"""Online verification service: queue → micro-batches → warm workers.

:class:`VerificationService` is the in-process serving engine.
``submit`` admits a :class:`~repro.serve.request.VerificationRequest`
into a bounded queue (applying the configured backpressure policy) and
returns a future; a scheduler thread drains the queue, groups
compatible requests into micro-batches under the ``max_wait_s``
deadline, and dispatches them to a :class:`WarmWorkerPool` whose
workers trained the segmenter once at startup.  Every submitted
request reaches exactly one terminal status: served (possibly degraded
past its deadline), rejected, shed, or failed.

Determinism contract
--------------------
A served verdict is a pure function of (pipeline spec, recordings,
request seed): batch composition, worker count, worker mode, and queue
timing never change it.  Only deadline expiry does — visibly, via
``degraded=True`` — because it switches the request to the
full-recording fallback.  ``tests/test_serve_service.py`` pins service
verdicts bitwise against direct ``DefensePipeline.verify`` calls.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Union

from repro.errors import ConfigurationError, ServiceOverloadError
from repro.serve.batching import Batch, BatchingConfig, MicroBatchScheduler
from repro.serve.metrics import MetricsCollector, ServiceMetrics
from repro.serve.queue import BackpressurePolicy, BoundedRequestQueue
from repro.serve.request import (
    RequestStatus,
    VerificationRequest,
    VerificationResponse,
)
from repro.serve.workers import PipelineSpec, WarmWorkerPool, WorkerResult

#: Scheduler wake-up interval while the queue is idle.
_IDLE_POLL_S = 0.05


def _duration(name: str, value: Optional[float], allow_none: bool) -> None:
    """Reject non-positive durations up front (CLI and config path)."""
    if value is None:
        if not allow_none:
            raise ConfigurationError(f"{name} must be set")
        return
    if not value > 0:
        raise ConfigurationError(
            f"{name} must be > 0, got {value}"
        )


@dataclass
class ServiceConfig:
    """Tunables of the serving engine.

    Attributes
    ----------
    n_workers:
        Warm workers in the pool.
    worker_mode:
        ``"thread"`` or ``"process"`` (see :class:`WarmWorkerPool`).
    queue_capacity:
        Bound of the admission queue.
    backpressure:
        Policy at capacity: ``block`` / ``reject`` / ``shed-oldest``
        (enum or its string value).
    block_timeout_s:
        Longest a blocking ``submit`` waits for queue space.
    max_batch_size / max_wait_s:
        Micro-batch formation parameters.
    p95_target_s:
        When set, enables latency-adaptive batching: a
        :class:`~repro.serve.batching.BatchSizeController` steers the
        effective batch size toward this rolling end-to-end p95
        (``max_batch_size`` becomes the upper bound).  ``None`` keeps
        the fixed batch size.
    default_deadline_s:
        Deadline applied to requests that do not carry their own.
    """

    n_workers: int = 2
    worker_mode: str = "thread"
    queue_capacity: int = 64
    backpressure: Union[BackpressurePolicy, str] = (
        BackpressurePolicy.BLOCK
    )
    block_timeout_s: Optional[float] = None
    max_batch_size: int = 8
    max_wait_s: float = 0.02
    p95_target_s: Optional[float] = None
    default_deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {self.n_workers}"
            )
        if self.worker_mode not in ("thread", "process"):
            raise ConfigurationError(
                f"worker_mode must be 'thread' or 'process', "
                f"got {self.worker_mode!r}"
            )
        if self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, "
                f"got {self.queue_capacity}"
            )
        if isinstance(self.backpressure, str):
            try:
                self.backpressure = BackpressurePolicy(self.backpressure)
            except ValueError:
                choices = ", ".join(
                    policy.value for policy in BackpressurePolicy
                )
                raise ConfigurationError(
                    f"unknown backpressure policy "
                    f"{self.backpressure!r}; choose one of: {choices}"
                ) from None
        if self.max_wait_s < 0:
            raise ConfigurationError(
                f"max_wait_s must be >= 0, got {self.max_wait_s}"
            )
        if self.max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, "
                f"got {self.max_batch_size}"
            )
        _duration(
            "p95_target_s", self.p95_target_s, allow_none=True
        )
        _duration(
            "default_deadline_s", self.default_deadline_s, allow_none=True
        )
        if self.block_timeout_s is not None and self.block_timeout_s < 0:
            raise ConfigurationError(
                f"block_timeout_s must be >= 0 (or None), "
                f"got {self.block_timeout_s}"
            )

    def batching(self) -> BatchingConfig:
        """The scheduler's view of this configuration."""
        return BatchingConfig(
            max_batch_size=self.max_batch_size,
            max_wait_s=self.max_wait_s,
            p95_target_s=self.p95_target_s,
        )


@dataclass
class _Entry:
    """A queued request plus its resolution future and timestamps."""

    request: VerificationRequest
    future: "Future[VerificationResponse]"
    submitted_at: float
    dispatched_at: float = 0.0


class VerificationService:
    """In-process online verification service.

    Parameters
    ----------
    spec:
        Pipeline recipe the workers warm up with.
    config:
        Queue / batching / pool tunables.

    Examples
    --------
    >>> from repro.serve import PipelineSpec, ServiceConfig
    >>> spec = PipelineSpec(use_segmenter=False)
    >>> service = VerificationService(spec, ServiceConfig(n_workers=1))
    >>> # with service: response = service.verify(request)
    """

    def __init__(
        self,
        spec: Optional[PipelineSpec] = None,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.spec = spec or PipelineSpec()
        self.config = config or ServiceConfig()
        self.metrics_collector = MetricsCollector()
        self._queue: "BoundedRequestQueue[_Entry]" = BoundedRequestQueue(
            capacity=self.config.queue_capacity,
            policy=self.config.backpressure,
            block_timeout_s=self.config.block_timeout_s,
        )
        self._scheduler: "MicroBatchScheduler[_Entry]" = (
            MicroBatchScheduler(self.config.batching())
        )
        self._scheduler_lock = threading.Lock()
        self._pool = WarmWorkerPool(
            self.spec,
            n_workers=self.config.n_workers,
            mode=self.config.worker_mode,
        )
        self._inflight: Set[Future] = set()
        self._inflight_lock = threading.Lock()
        self._inflight_drained = threading.Condition(self._inflight_lock)
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started = False
        # Serializes start/stop/resize so concurrent lifecycle calls
        # (e.g. a fleet front door stopping a shard while its
        # autoscaler resizes it, or two callers double-stopping) are
        # idempotent instead of racing on _thread/_pool teardown.
        self._lifecycle_lock = threading.Lock()
        #: Wall-clock seconds :meth:`start` spent warming the worker
        #: pool (training or store-loading segmenters); ``None`` until
        #: the first start.  The cold-start benchmark reads this to
        #: separate warm-up cost from steady-state latency.
        self.warmup_s: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Warm the worker pool and start the batching scheduler."""
        with self._lifecycle_lock:
            if self._started:
                return
            warmup_start = time.monotonic()
            self._pool.start()
            self.warmup_s = time.monotonic() - warmup_start
            self._thread = threading.Thread(
                target=self._scheduler_loop,
                name="verify-scheduler",
                daemon=True,
            )
            self._thread.start()
            self._started = True

    def stop(self) -> None:
        """Drain queued work, wait for in-flight batches, shut down.

        Idempotent and safe to call concurrently: every caller returns
        only after the drain completed (the first caller performs it,
        the rest wait on the lifecycle lock), and a stop racing the
        draining scheduler loop can no longer observe a half-torn-down
        ``_thread``/``_pool`` pair.
        """
        with self._lifecycle_lock:
            if not self._started:
                return
            self._stop_event.set()
            self._queue.close()
            if self._thread is not None:
                self._thread.join()
                self._thread = None
            with self._inflight_drained:
                while self._inflight:
                    self._inflight_drained.wait()
            self._pool.shutdown(wait=True)
            self._started = False

    def resize_workers(self, n_workers: int) -> None:
        """Swap in a pool of ``n_workers`` without dropping requests.

        The replacement pool is warmed and started *before* the swap,
        so new batches dispatch to it immediately; the old pool drains
        its in-flight batches on a background thread (their futures —
        and therefore their requests' responses — still resolve).  The
        fleet tier's shard autoscaler calls this to track load.

        No-op when ``n_workers`` equals the current pool size.  Raises
        :class:`ConfigurationError` when the service is not running or
        ``n_workers < 1``.
        """
        if int(n_workers) < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        n_workers = int(n_workers)
        with self._lifecycle_lock:
            if not self._started:
                raise ConfigurationError(
                    "service not started; resize_workers needs a "
                    "running service"
                )
            if n_workers == self._pool.n_workers:
                return
            new_pool = WarmWorkerPool(
                self.spec,
                n_workers=n_workers,
                mode=self.config.worker_mode,
            )
            new_pool.start()
            old_pool, self._pool = self._pool, new_pool
            self.config.n_workers = n_workers
        threading.Thread(
            target=lambda: old_pool.shutdown(wait=True),
            name="verify-pool-retire",
            daemon=True,
        ).start()

    @property
    def n_workers(self) -> int:
        """Current worker-pool size (tracks :meth:`resize_workers`)."""
        return self._pool.n_workers

    @property
    def realized_worker_mode(self) -> Optional[str]:
        """Worker mode in effect after :meth:`start` (process pools
        fall back to ``"thread"`` when spawning fails)."""
        return self._pool.realized_mode

    def __enter__(self) -> "VerificationService":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------

    def submit(
        self, request: VerificationRequest
    ) -> "Future[VerificationResponse]":
        """Admit one request; returns a future for its response.

        Raises :class:`ServiceOverloadError` when the queue refuses the
        request (``reject`` policy, or a ``block`` timeout).  Requests
        dropped by ``shed-oldest`` are *not* raised here — their
        already-returned futures resolve with a ``SHED`` response.
        """
        if not self._started:
            raise ConfigurationError(
                "service not started; call start() or use it as a "
                "context manager"
            )
        if (
            request.deadline_s is None
            and self.config.default_deadline_s is not None
        ):
            request.deadline_s = self.config.default_deadline_s
        self.metrics_collector.record_submitted()
        entry = _Entry(
            request=request,
            future=Future(),
            submitted_at=time.monotonic(),
        )
        try:
            shed = self._queue.put(entry)
        except ServiceOverloadError:
            self.metrics_collector.record_rejected()
            raise
        if shed is not None:
            self.metrics_collector.record_shed()
            shed.future.set_result(
                VerificationResponse(
                    request_id=shed.request.request_id,
                    status=RequestStatus.SHED,
                    total_s=time.monotonic() - shed.submitted_at,
                    error=(
                        "shed by backpressure policy 'shed-oldest' "
                        f"(queue capacity {self._queue.capacity})"
                    ),
                )
            )
        return entry.future

    def verify(
        self, request: VerificationRequest
    ) -> VerificationResponse:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(request).result()

    def metrics(self) -> ServiceMetrics:
        """Snapshot of counters, percentiles, and occupancy."""
        with self._scheduler_lock:
            n_pending = self._scheduler.n_pending
            controller = self._scheduler.controller_stats()
        return self.metrics_collector.snapshot(
            queue_depth=self._queue.depth,
            n_pending=n_pending,
            batch_controller=controller,
        )

    # ------------------------------------------------------------------
    # Scheduler internals
    # ------------------------------------------------------------------

    def _scheduler_loop(self) -> None:
        while True:
            with self._scheduler_lock:
                deadline = self._scheduler.next_deadline(time.monotonic())
            timeout = _IDLE_POLL_S if deadline is None else deadline
            entry = self._queue.get(timeout_s=min(timeout, _IDLE_POLL_S))
            now = time.monotonic()
            with self._scheduler_lock:
                if entry is not None:
                    self._scheduler.offer(
                        entry, entry.request.batch_key, now
                    )
                    # Opportunistically drain whatever else is queued so
                    # batches actually fill under load.
                    while True:
                        extra = self._queue.get(timeout_s=0)
                        if extra is None:
                            break
                        self._scheduler.offer(
                            extra, extra.request.batch_key, now
                        )
                batches = self._scheduler.ready_batches(now)
            for batch in batches:
                self._dispatch(batch, now)
            if self._stop_event.is_set():
                self._drain_on_stop()
                return

    def _drain_on_stop(self) -> None:
        """Flush everything still queued or pending at shutdown."""
        now = time.monotonic()
        with self._scheduler_lock:
            for entry in self._queue.drain():
                self._scheduler.offer(entry, entry.request.batch_key, now)
            batches = self._scheduler.flush()
        for batch in batches:
            self._dispatch(batch, now)

    def _dispatch(self, batch: "Batch[_Entry]", now: float) -> None:
        entries = batch.entries
        for entry in entries:
            entry.dispatched_at = now
        ages = [now - entry.submitted_at for entry in entries]
        payload = Batch(
            key=batch.key,
            entries=[entry.request for entry in entries],
            formed_reason=batch.formed_reason,
        )
        self.metrics_collector.record_batch(len(entries))
        try:
            pool_future = self._pool.submit(payload, ages)
        except Exception:
            # The pool may have been swapped by resize_workers between
            # the read and the submit; one retry lands on the current
            # pool.  A second failure means the pool really died.
            try:
                pool_future = self._pool.submit(payload, ages)
            except Exception as error:
                self._fail_batch(entries, error)
                return
        with self._inflight_lock:
            self._inflight.add(pool_future)
        pool_future.add_done_callback(
            lambda future, entries=entries: self._on_batch_done(
                entries, future
            )
        )

    def _on_batch_done(
        self,
        entries: List[_Entry],
        pool_future: "Future[List[WorkerResult]]",
    ) -> None:
        try:
            error = pool_future.exception()
            if error is not None:
                self._fail_batch(entries, error)
                return
            results = pool_future.result()
            n_batched = sum(1 for result in results if result.batched)
            if n_batched:
                self.metrics_collector.record_batched_forward(n_batched)
            for result in results:
                if result.events:
                    self.metrics_collector.record_stage_events(
                        result.events
                    )
            by_id: Dict[int, WorkerResult] = dict(enumerate(results))
            now = time.monotonic()
            for index, entry in enumerate(entries):
                result = by_id.get(index)
                if result is None or result.error is not None:
                    message = (
                        result.error
                        if result is not None
                        else "worker returned no result"
                    )
                    self.metrics_collector.record_failed()
                    entry.future.set_result(
                        VerificationResponse(
                            request_id=entry.request.request_id,
                            status=RequestStatus.FAILED,
                            total_s=now - entry.submitted_at,
                            queue_wait_s=(
                                entry.dispatched_at - entry.submitted_at
                            ),
                            error=message,
                        )
                    )
                    continue
                total_s = now - entry.submitted_at
                queue_wait_s = entry.dispatched_at - entry.submitted_at
                self.metrics_collector.record_served(
                    total_s=total_s,
                    queue_wait_s=queue_wait_s,
                    stage_timings_s=result.stage_timings_s,
                    degraded=result.degraded,
                )
                # Drive the adaptive batch-size controller (no-op in
                # fixed mode).  Thread-safe without _scheduler_lock:
                # observe_latency only touches the controller's own
                # locked state.
                self._scheduler.observe_latency(total_s)
                entry.future.set_result(
                    VerificationResponse(
                        request_id=entry.request.request_id,
                        status=RequestStatus.SERVED,
                        verdict=result.verdict,
                        degraded=result.degraded,
                        stage_timings_s=result.stage_timings_s,
                        queue_wait_s=queue_wait_s,
                        total_s=total_s,
                    )
                )
        finally:
            with self._inflight_drained:
                self._inflight.discard(pool_future)
                if not self._inflight:
                    self._inflight_drained.notify_all()

    def _fail_batch(
        self, entries: List[_Entry], error: BaseException
    ) -> None:
        now = time.monotonic()
        for entry in entries:
            self.metrics_collector.record_failed()
            entry.future.set_result(
                VerificationResponse(
                    request_id=entry.request.request_id,
                    status=RequestStatus.FAILED,
                    total_s=now - entry.submitted_at,
                    error=f"{type(error).__name__}: {error}",
                )
            )
