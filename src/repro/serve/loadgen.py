"""Synthetic load generator for the verification service.

Builds a deterministic pool of (VA, wearable) recording pairs — a mix
of legitimate commands and thru-barrier replay attacks from the
synthetic corpus — then replays them against a
:class:`~repro.serve.service.VerificationService` in one of two
classic load-testing shapes:

``closed``
    ``concurrency`` clients issue requests back-to-back; offered load
    adapts to service speed (throughput measurement).
``open``
    Requests arrive on a fixed schedule at ``rate_rps`` regardless of
    completions (latency-under-offered-load measurement; backpressure
    behaviour becomes visible here).

Request seeds are derived per index with
:func:`repro.utils.rng.derive_seed`, so a loadgen run's verdicts are
reproducible and independent of scheduling order.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ServiceOverloadError
from repro.serve.request import (
    RequestStatus,
    VerificationRequest,
    VerificationResponse,
)
from repro.serve.service import VerificationService
from repro.utils.rng import derive_seed
from repro.utils.stats import percentile as _shared_percentile

#: Command texts cycled through when generating the recording pool
#: (all phonemizable with the command lexicon).
_POOL_COMMANDS = (
    "alexa unlock the back door",
    "ok google open the garage door",
    "ok google lock the front door",
)


@dataclass
class LoadgenConfig:
    """Shape and size of one load-generation run."""

    n_requests: int = 50
    mode: str = "closed"
    concurrency: int = 4
    rate_rps: float = 20.0
    seed: int = 0
    pool_size: int = 6
    attack_fraction: float = 0.5
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ConfigurationError(
                f"n_requests must be >= 1, got {self.n_requests}"
            )
        if self.mode not in ("closed", "open"):
            raise ConfigurationError(
                f"mode must be 'closed' or 'open', got {self.mode!r}"
            )
        if self.concurrency < 1:
            raise ConfigurationError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        if not self.rate_rps > 0:
            raise ConfigurationError(
                f"rate_rps must be > 0, got {self.rate_rps}"
            )
        if self.pool_size < 1:
            raise ConfigurationError(
                f"pool_size must be >= 1, got {self.pool_size}"
            )
        if not 0.0 <= self.attack_fraction <= 1.0:
            raise ConfigurationError(
                f"attack_fraction must lie in [0, 1], "
                f"got {self.attack_fraction}"
            )
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise ConfigurationError(
                f"deadline_s must be > 0 (or None), got {self.deadline_s}"
            )


@dataclass
class RecordingPool:
    """Pre-generated request material cycled through by the clients."""

    pairs: List[Tuple[np.ndarray, np.ndarray, bool]] = field(
        default_factory=list
    )

    def pair(self, index: int) -> Tuple[np.ndarray, np.ndarray, bool]:
        """(va, wearable, is_attack) for request ``index``."""
        return self.pairs[index % len(self.pairs)]


def build_recording_pool(
    seed: int = 0,
    pool_size: int = 6,
    attack_fraction: float = 0.5,
) -> RecordingPool:
    """Generate a deterministic mix of legitimate and attack pairs."""
    from repro.attacks import AttackScenario, ReplayAttack
    from repro.eval.rooms import ROOM_A
    from repro.phonemes import SyntheticCorpus, phonemize

    corpus = SyntheticCorpus(
        n_speakers=2, seed=derive_seed(seed, "loadgen-corpus")
    )
    user = corpus.speakers[0]
    scenario = AttackScenario(room_config=ROOM_A)
    replay = ReplayAttack(corpus, user)
    n_attacks = int(round(pool_size * attack_fraction))
    pairs: List[Tuple[np.ndarray, np.ndarray, bool]] = []
    for index in range(pool_size):
        is_attack = index < n_attacks
        command = _POOL_COMMANDS[index % len(_POOL_COMMANDS)]
        if is_attack:
            attack = replay.generate(
                command=command,
                rng=derive_seed(seed, "loadgen-attack", index),
            )
            va, wearable = scenario.attack_recordings(
                attack,
                spl_db=75.0,
                rng=derive_seed(seed, "loadgen-attack-rec", index),
            )
        else:
            utterance = corpus.utterance(
                phonemize(command),
                speaker=user,
                text=command,
                rng=derive_seed(seed, "loadgen-utt", index),
            )
            va, wearable = scenario.legitimate_recordings(
                utterance,
                spl_db=70.0,
                rng=derive_seed(seed, "loadgen-legit-rec", index),
            )
        pairs.append((va, wearable, is_attack))
    return RecordingPool(pairs=pairs)


@dataclass
class LoadgenReport:
    """Outcome of one load-generation run.

    ``n_issued == n_served + n_rejected + n_shed + n_failed`` always
    holds — a request has exactly one terminal status (pinned by the
    serving tests).
    """

    mode: str
    n_issued: int = 0
    n_served: int = 0
    n_degraded: int = 0
    n_rejected: int = 0
    n_shed: int = 0
    n_failed: int = 0
    wall_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        """Served requests per second of loadgen wall clock."""
        if self.wall_s <= 0:
            return 0.0
        return self.n_served / self.wall_s

    def latency_percentile(self, percentile: float) -> float:
        """Latency percentile (seconds) over served requests."""
        return _shared_percentile(self.latencies_s, percentile)

    def account(self, response: VerificationResponse) -> None:
        """Fold one response into the tallies (thread-unsafe; lock)."""
        if response.status is RequestStatus.SERVED:
            self.n_served += 1
            if response.degraded:
                self.n_degraded += 1
            self.latencies_s.append(response.total_s)
        elif response.status is RequestStatus.SHED:
            self.n_shed += 1
        elif response.status is RequestStatus.REJECTED:
            self.n_rejected += 1
        else:
            self.n_failed += 1


def _make_request(
    config: LoadgenConfig, pool: RecordingPool, index: int
) -> VerificationRequest:
    va, wearable, is_attack = pool.pair(index)
    kind = "attack" if is_attack else "legit"
    return VerificationRequest(
        va_audio=va,
        wearable_audio=wearable,
        seed=derive_seed(config.seed, "request", index),
        request_id=f"{kind}-{index}",
        deadline_s=config.deadline_s,
    )


def run_loadgen(
    service: VerificationService,
    config: Optional[LoadgenConfig] = None,
    pool: Optional[RecordingPool] = None,
) -> LoadgenReport:
    """Drive ``service`` with synthetic traffic and tally outcomes.

    The service must already be started.  Returns the client-side
    report; compare with ``service.metrics()`` for the server-side
    view.
    """
    config = config or LoadgenConfig()
    pool = pool or build_recording_pool(
        seed=config.seed,
        pool_size=config.pool_size,
        attack_fraction=config.attack_fraction,
    )
    report = LoadgenReport(mode=config.mode)
    report_lock = threading.Lock()
    start = time.monotonic()

    def issue(index: int) -> Optional[object]:
        request = _make_request(config, pool, index)
        with report_lock:
            report.n_issued += 1
        try:
            return service.submit(request)
        except ServiceOverloadError:
            with report_lock:
                report.n_rejected += 1
            return None

    if config.mode == "closed":
        counter = {"next": 0}
        counter_lock = threading.Lock()

        def client() -> None:
            while True:
                with counter_lock:
                    index = counter["next"]
                    if index >= config.n_requests:
                        return
                    counter["next"] = index + 1
                future = issue(index)
                if future is None:
                    continue
                response = future.result()
                with report_lock:
                    report.account(response)

        threads = [
            threading.Thread(target=client, name=f"loadgen-{i}")
            for i in range(config.concurrency)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    else:  # open loop
        interval = 1.0 / config.rate_rps
        futures = []
        for index in range(config.n_requests):
            target = start + index * interval
            delay = target - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            future = issue(index)
            if future is not None:
                futures.append(future)
        for future in futures:
            response = future.result()
            with report_lock:
                report.account(response)

    report.wall_s = time.monotonic() - start
    return report
