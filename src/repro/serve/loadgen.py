"""Synthetic load generator for the verification service.

Builds a deterministic pool of (VA, wearable) recording pairs — a mix
of legitimate commands and thru-barrier replay attacks from the
synthetic corpus — then replays them against a
:class:`~repro.serve.service.VerificationService` in one of two
classic load-testing shapes:

``closed``
    ``concurrency`` clients issue requests back-to-back; offered load
    adapts to service speed (throughput measurement).
``open``
    Requests arrive on a fixed schedule at ``rate_rps`` regardless of
    completions (latency-under-offered-load measurement; backpressure
    behaviour becomes visible here).

Request seeds are derived per index with
:func:`repro.utils.rng.derive_seed`, so a loadgen run's verdicts are
reproducible and independent of scheduling order.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ServiceOverloadError
from repro.serve.request import (
    RequestStatus,
    VerificationRequest,
    VerificationResponse,
)
from repro.serve.service import VerificationService
from repro.utils.rng import derive_seed
from repro.utils.stats import percentile as _shared_percentile

#: Command texts cycled through when generating the recording pool
#: (all phonemizable with the command lexicon).
_POOL_COMMANDS = (
    "alexa unlock the back door",
    "ok google open the garage door",
    "ok google lock the front door",
)


class UserActivityModel:
    """Deterministic Zipf-skewed synthetic-user population.

    One shared model for the single-service and fleet load generators:
    user ``user-<k>`` has activity weight ``(k+1)^-s`` (Zipf with
    exponent ``s``), and the mapping from request index to user id is a
    pure function of ``(users, zipf_s, seed)`` — the same config always
    produces the same per-user arrival stream, regardless of how the
    requests are later scheduled or sharded.

    ``interarrival_s`` additionally derives a heavy-tailed (Pareto,
    shape ``alpha``) open-loop arrival process with the requested mean
    rate; the fleet load generator uses it to model bursty arrivals at
    the front door.
    """

    def __init__(
        self, users: int, zipf_s: float = 1.1, seed: int = 0
    ) -> None:
        if users < 1:
            raise ConfigurationError(
                f"users must be >= 1, got {users}"
            )
        if not zipf_s >= 0:
            raise ConfigurationError(
                f"zipf_s must be >= 0, got {zipf_s}"
            )
        self.users = int(users)
        self.zipf_s = float(zipf_s)
        self.seed = int(seed)
        ranks = np.arange(1, self.users + 1, dtype=np.float64)
        weights = ranks ** (-self.zipf_s)
        self._weights = weights / weights.sum()
        self._cdf = np.cumsum(self._weights)
        self._rng = np.random.default_rng(
            derive_seed(self.seed, "user-activity")
        )

    def weight(self, rank: int) -> float:
        """Activity share of the user at zero-based ``rank``."""
        return float(self._weights[rank])

    def user_rank(self, index: int) -> int:
        """Zero-based rank of the user issuing request ``index``.

        Derived from ``(seed, index)`` alone — not from generator
        state — so any subset of the request stream can be regenerated
        independently (the fleet benchmark re-derives per-shard
        streams this way).
        """
        rng = np.random.default_rng(
            derive_seed(self.seed, "user-draw", index)
        )
        point = rng.random()
        return int(np.searchsorted(self._cdf, point, side="left"))

    def user_id(self, index: int) -> str:
        """User id (``user-<rank>``) issuing request ``index``."""
        return f"user-{self.user_rank(index)}"

    def interarrival_s(
        self, index: int, rate_rps: float, alpha: float = 2.5
    ) -> float:
        """Heavy-tailed gap (seconds) before request ``index``.

        Pareto(``alpha``) with the scale chosen so the mean gap is
        ``1 / rate_rps``; smaller ``alpha`` means burstier arrivals
        (``alpha <= 1`` has no finite mean and is rejected).
        """
        if not rate_rps > 0:
            raise ConfigurationError(
                f"rate_rps must be > 0, got {rate_rps}"
            )
        if not alpha > 1:
            raise ConfigurationError(
                f"alpha must be > 1 for a finite mean, got {alpha}"
            )
        rng = np.random.default_rng(
            derive_seed(self.seed, "arrival", index)
        )
        mean = 1.0 / rate_rps
        scale = mean * (alpha - 1.0) / alpha
        return float(scale / rng.random() ** (1.0 / alpha))


@dataclass
class LoadgenConfig:
    """Shape and size of one load-generation run.

    ``users``/``zipf_s`` select the synthetic-user population: with
    ``users == 0`` (default) the legacy single-user stream is kept
    bit-for-bit; with ``users >= 1`` every request is attributed to a
    Zipf-skewed user id via :class:`UserActivityModel` (the same model
    the fleet loadgen shards by) and its seed is derived per
    ``(user, index)``.
    """

    n_requests: int = 50
    mode: str = "closed"
    concurrency: int = 4
    rate_rps: float = 20.0
    seed: int = 0
    pool_size: int = 6
    attack_fraction: float = 0.5
    deadline_s: Optional[float] = None
    users: int = 0
    zipf_s: float = 1.1

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ConfigurationError(
                f"n_requests must be >= 1, got {self.n_requests}"
            )
        if self.mode not in ("closed", "open"):
            raise ConfigurationError(
                f"mode must be 'closed' or 'open', got {self.mode!r}"
            )
        if self.concurrency < 1:
            raise ConfigurationError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        if not self.rate_rps > 0:
            raise ConfigurationError(
                f"rate_rps must be > 0, got {self.rate_rps}"
            )
        if self.pool_size < 1:
            raise ConfigurationError(
                f"pool_size must be >= 1, got {self.pool_size}"
            )
        if not 0.0 <= self.attack_fraction <= 1.0:
            raise ConfigurationError(
                f"attack_fraction must lie in [0, 1], "
                f"got {self.attack_fraction}"
            )
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise ConfigurationError(
                f"deadline_s must be > 0 (or None), got {self.deadline_s}"
            )
        if self.users < 0:
            raise ConfigurationError(
                f"users must be >= 0, got {self.users}"
            )
        if not self.zipf_s >= 0:
            raise ConfigurationError(
                f"zipf_s must be >= 0, got {self.zipf_s}"
            )

    def user_model(self) -> Optional[UserActivityModel]:
        """The run's user population, or ``None`` in single-user mode."""
        if self.users == 0:
            return None
        return UserActivityModel(
            users=self.users, zipf_s=self.zipf_s, seed=self.seed
        )


@dataclass
class RecordingPool:
    """Pre-generated request material cycled through by the clients."""

    pairs: List[Tuple[np.ndarray, np.ndarray, bool]] = field(
        default_factory=list
    )

    def pair(self, index: int) -> Tuple[np.ndarray, np.ndarray, bool]:
        """(va, wearable, is_attack) for request ``index``."""
        return self.pairs[index % len(self.pairs)]


def build_recording_pool(
    seed: int = 0,
    pool_size: int = 6,
    attack_fraction: float = 0.5,
) -> RecordingPool:
    """Generate a deterministic mix of legitimate and attack pairs."""
    from repro.attacks import AttackScenario, ReplayAttack
    from repro.eval.rooms import ROOM_A
    from repro.phonemes import SyntheticCorpus, phonemize

    corpus = SyntheticCorpus(
        n_speakers=2, seed=derive_seed(seed, "loadgen-corpus")
    )
    user = corpus.speakers[0]
    scenario = AttackScenario(room_config=ROOM_A)
    replay = ReplayAttack(corpus, user)
    n_attacks = int(round(pool_size * attack_fraction))
    pairs: List[Tuple[np.ndarray, np.ndarray, bool]] = []
    for index in range(pool_size):
        is_attack = index < n_attacks
        command = _POOL_COMMANDS[index % len(_POOL_COMMANDS)]
        if is_attack:
            attack = replay.generate(
                command=command,
                rng=derive_seed(seed, "loadgen-attack", index),
            )
            va, wearable = scenario.attack_recordings(
                attack,
                spl_db=75.0,
                rng=derive_seed(seed, "loadgen-attack-rec", index),
            )
        else:
            utterance = corpus.utterance(
                phonemize(command),
                speaker=user,
                text=command,
                rng=derive_seed(seed, "loadgen-utt", index),
            )
            va, wearable = scenario.legitimate_recordings(
                utterance,
                spl_db=70.0,
                rng=derive_seed(seed, "loadgen-legit-rec", index),
            )
        pairs.append((va, wearable, is_attack))
    return RecordingPool(pairs=pairs)


@dataclass
class LoadgenReport:
    """Outcome of one load-generation run.

    ``n_issued == n_served + n_rejected + n_shed + n_failed`` always
    holds — a request has exactly one terminal status (pinned by the
    serving tests).
    """

    mode: str
    n_issued: int = 0
    n_served: int = 0
    n_degraded: int = 0
    n_rejected: int = 0
    n_shed: int = 0
    n_failed: int = 0
    wall_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        """Served requests per second of loadgen wall clock."""
        if self.wall_s <= 0:
            return 0.0
        return self.n_served / self.wall_s

    def latency_percentile(self, percentile: float) -> float:
        """Latency percentile (seconds) over served requests."""
        return _shared_percentile(self.latencies_s, percentile)

    def account(self, response: VerificationResponse) -> None:
        """Fold one response into the tallies (thread-unsafe; lock)."""
        if response.status is RequestStatus.SERVED:
            self.n_served += 1
            if response.degraded:
                self.n_degraded += 1
            self.latencies_s.append(response.total_s)
        elif response.status is RequestStatus.SHED:
            self.n_shed += 1
        elif response.status is RequestStatus.REJECTED:
            self.n_rejected += 1
        else:
            self.n_failed += 1


def _make_request(
    config: LoadgenConfig,
    pool: RecordingPool,
    index: int,
    users: Optional[UserActivityModel] = None,
) -> VerificationRequest:
    va, wearable, is_attack = pool.pair(index)
    kind = "attack" if is_attack else "legit"
    if users is None:
        # Legacy single-user stream: derivation unchanged so existing
        # runs stay bit-for-bit reproducible.
        seed = derive_seed(config.seed, "request", index)
        request_id = f"{kind}-{index}"
    else:
        user = users.user_id(index)
        seed = derive_seed(config.seed, "request", user, index)
        request_id = f"{user}/{kind}-{index}"
    return VerificationRequest(
        va_audio=va,
        wearable_audio=wearable,
        seed=seed,
        request_id=request_id,
        deadline_s=config.deadline_s,
    )


def run_loadgen(
    service: VerificationService,
    config: Optional[LoadgenConfig] = None,
    pool: Optional[RecordingPool] = None,
) -> LoadgenReport:
    """Drive ``service`` with synthetic traffic and tally outcomes.

    The service must already be started.  Returns the client-side
    report; compare with ``service.metrics()`` for the server-side
    view.
    """
    config = config or LoadgenConfig()
    pool = pool or build_recording_pool(
        seed=config.seed,
        pool_size=config.pool_size,
        attack_fraction=config.attack_fraction,
    )
    report = LoadgenReport(mode=config.mode)
    report_lock = threading.Lock()
    users = config.user_model()
    start = time.monotonic()

    def issue(index: int) -> Optional[object]:
        request = _make_request(config, pool, index, users=users)
        with report_lock:
            report.n_issued += 1
        try:
            return service.submit(request)
        except ServiceOverloadError:
            with report_lock:
                report.n_rejected += 1
            return None

    if config.mode == "closed":
        counter = {"next": 0}
        counter_lock = threading.Lock()

        def client() -> None:
            while True:
                with counter_lock:
                    index = counter["next"]
                    if index >= config.n_requests:
                        return
                    counter["next"] = index + 1
                future = issue(index)
                if future is None:
                    continue
                response = future.result()
                with report_lock:
                    report.account(response)

        threads = [
            threading.Thread(target=client, name=f"loadgen-{i}")
            for i in range(config.concurrency)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    else:  # open loop
        interval = 1.0 / config.rate_rps
        futures = []
        for index in range(config.n_requests):
            target = start + index * interval
            delay = target - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            future = issue(index)
            if future is not None:
                futures.append(future)
        for future in futures:
            response = future.result()
            with report_lock:
                report.account(response)

    report.wall_s = time.monotonic() - start
    return report
