"""Built-in scenario packs.

Each pack is *pure registry data* — a :class:`ScenarioSpec` composed
from existing channel stages and materials, with zero edits to core
code.  That is the refactor's proof obligation: a new physical threat
model or defense hardware is a ~50-line entry here, not a fork of the
attack/sensing stack.

Packs
-----
``baseline-<material>``
    The paper's standard thru-barrier condition pinned to one material
    across all rooms (glass window / wooden door / brick wall).
``ultrasound-solid``
    SUAD-style solid-channel ultrasound injection: the command is
    amplitude-modulated onto a 21 kHz carrier, driven through an
    ultrasonic contact transducer into the barrier *solid*, and
    demodulated back to baseband by square-law mechanical nonlinearity
    on the room side.  No airborne thru-barrier path is involved, so
    the barrier's α(f) curve never touches the attack — the question
    the pack answers is whether the vibration-domain detector still
    catches the resulting replay-class artifacts.
``metamaterial-barrier``
    MetaGuardian-style metamaterial panel: the host glass plus a deep
    resonator notch at 250 Hz — exactly the 85–500 Hz band that
    survives an ordinary window — swept against the standard attack
    suite.
``metamaterial-hf-control``
    The same panel with the notch parked at 2.5 kHz, far above the
    surviving band.  Comparing the two isolates notch *placement* as
    the active ingredient.
"""

from __future__ import annotations

from repro.channels.stages import (
    ULTRASONIC_TRANSDUCER,
    LoudspeakerStage,
    NonlinearDemodulationStage,
    SolidConductionStage,
    UltrasoundCarrierStage,
)
from repro.scenarios.registry import ScenarioSpec, register_scenario

#: The classic thru-barrier condition, one entry per standard material.
BASELINE_GLASS = register_scenario(
    ScenarioSpec(
        name="baseline-glass",
        description=(
            "Standard thru-barrier replay attack through a glass window"
        ),
        attack="replay",
        material="glass_window",
        tags=("baseline",),
    )
)

BASELINE_WOOD = register_scenario(
    ScenarioSpec(
        name="baseline-wood",
        description=(
            "Standard thru-barrier replay attack through a wooden door"
        ),
        attack="replay",
        material="wooden_door",
        tags=("baseline",),
    )
)

BASELINE_BRICK = register_scenario(
    ScenarioSpec(
        name="baseline-brick",
        description=(
            "Standard thru-barrier replay attack against a brick wall "
            "(the attack-defeating control)"
        ),
        attack="replay",
        material="brick_wall",
        tags=("baseline", "control"),
    )
)

#: Solid-channel ultrasound injection (SUAD-style).  The injection
#: graph replaces the airborne loudspeaker → barrier chain entirely:
#: carrier modulation → ultrasonic transducer → structure-borne path →
#: square-law demodulation back into the audible band inside the room.
ULTRASOUND_SOLID = register_scenario(
    ScenarioSpec(
        name="ultrasound-solid",
        description=(
            "Inaudible 21 kHz carrier injected through the barrier "
            "solid, demodulated to an audible command inside the room"
        ),
        attack="replay",
        attack_stages=(
            UltrasoundCarrierStage(),
            LoudspeakerStage(ULTRASONIC_TRANSDUCER),
            SolidConductionStage(),
            NonlinearDemodulationStage(),
        ),
        tags=("pack", "ultrasound"),
    )
)

#: Metamaterial barrier pack: notch tuned to the thru-barrier band.
METAMATERIAL_BARRIER = register_scenario(
    ScenarioSpec(
        name="metamaterial-barrier",
        description=(
            "Metamaterial panel with a 250 Hz resonator notch (the "
            "thru-barrier carrier band) vs the standard attack suite"
        ),
        attack="replay",
        material="meta_speech_notch",
        tags=("pack", "metamaterial"),
    )
)

#: Placement control: identical notch depth, parked out of band.
METAMATERIAL_HF_CONTROL = register_scenario(
    ScenarioSpec(
        name="metamaterial-hf-control",
        description=(
            "Metamaterial panel with the notch at 2.5 kHz — out of the "
            "surviving band; isolates notch placement as the defense"
        ),
        attack="replay",
        material="meta_hf_notch",
        tags=("pack", "metamaterial", "control"),
    )
)
