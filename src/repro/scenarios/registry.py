"""String-keyed scenario registry.

A :class:`ScenarioSpec` composes one named evaluation condition out of
pure data: attack kind × barrier material × attack-side channel graph ×
replay-side channel graph × detector configuration.  Because every field
is a frozen dataclass or primitive, a spec fingerprints deterministically
through :func:`repro.store.fingerprint.artifact_fingerprint` — the same
scheme that keys trained artifacts — and travels across process
boundaries by *name* (workers re-resolve the spec from the registry on
import, so campaign units stay picklable).

Scenario packs register themselves at import time
(:mod:`repro.scenarios.packs`); user code adds new conditions with
:func:`register_scenario` and wires them through the evaluate/serve
CLIs with ``--scenario <name>`` — zero core edits required.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.acoustics.materials import BarrierMaterial, get_material
from repro.attacks.base import AttackKind
from repro.channels.graph import InjectionChannel, PropagationChannel
from repro.channels.stages import ChannelStage
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, fingerprintable evaluation condition.

    Attributes
    ----------
    name:
        Registry key (also the CLI ``--scenario`` value).
    description:
        One-line summary for ``--scenario`` help text and reports.
    attack:
        :class:`~repro.attacks.base.AttackKind` value naming the attack
        sound family the adversary plays.
    material:
        :data:`~repro.acoustics.materials.MATERIALS` key overriding the
        barrier material of every evaluation room; ``None`` keeps each
        room's own barrier.
    attack_stages:
        Custom attack-side channel stages.  Empty means the classic
        loudspeaker → barrier thru-barrier channel built from the room's
        (possibly overridden) material.
    sensor_stages:
        Custom replay-side channel stages for the wearable's
        cross-domain sensor.  Empty means the paper's default speaker →
        conduction → accelerometer chain.
    attack_spl_db:
        Playback level of the attack device.
    wearer_moving:
        Evaluate with body-motion interference on the wearable.
    detector_threshold:
        Optional fixed verdict threshold; ``None`` leaves the detector
        in scoring mode (the harness calibrates at the EER point).
    tags:
        Free-form labels for filtering in reports.
    """

    name: str
    description: str
    attack: str = AttackKind.REPLAY.value
    material: Optional[str] = None
    attack_stages: Tuple[ChannelStage, ...] = ()
    sensor_stages: Tuple[ChannelStage, ...] = ()
    attack_spl_db: float = 75.0
    wearer_moving: bool = False
    detector_threshold: Optional[float] = None
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        valid_kinds = {kind.value for kind in AttackKind}
        if self.attack not in valid_kinds:
            raise ConfigurationError(
                f"scenario {self.name!r}: unknown attack "
                f"{self.attack!r}; known: {sorted(valid_kinds)}"
            )
        if self.material is not None:
            get_material(self.material)  # raises with the known list
        if self.attack_spl_db <= 0:
            raise ConfigurationError(
                f"scenario {self.name!r}: attack_spl_db must be > 0"
            )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    @property
    def attack_kind(self) -> AttackKind:
        """The attack family as an enum member."""
        return AttackKind(self.attack)

    @property
    def fingerprint(self) -> str:
        """Deterministic hex fingerprint of the full condition.

        Uses the store's canonical-token scheme, so the fingerprint is
        stable across processes and Python hash seeds and changes
        whenever any stage parameter, material, or detector knob does.
        """
        from repro.store.fingerprint import artifact_fingerprint

        return artifact_fingerprint("scenario", spec=self)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    def barrier_material(self) -> Optional[BarrierMaterial]:
        """The overriding material, or ``None`` for room defaults."""
        if self.material is None:
            return None
        return get_material(self.material)

    def rooms(self) -> List["RoomConfig"]:  # noqa: F821
        """Evaluation rooms, with the material override applied."""
        from repro.eval.rooms import ROOMS

        rooms = list(ROOMS.values())
        override = self.barrier_material()
        if override is None:
            return rooms
        return [replace(room, barrier=override) for room in rooms]

    def build_attack_channel(self) -> Optional[InjectionChannel]:
        """The custom injection channel, or ``None`` for thru-barrier."""
        if not self.attack_stages:
            return None
        return InjectionChannel(
            channel=PropagationChannel(
                stages=tuple(self.attack_stages),
                name=f"{self.name}-attack",
            )
        )

    def build_attack_scenario(
        self, room_config: "RoomConfig", **kwargs  # noqa: F821
    ) -> "AttackScenario":  # noqa: F821
        """An :class:`~repro.attacks.scenario.AttackScenario` for a room.

        Applies the material override to the room and installs the
        custom injection channel when the spec defines one; extra
        keyword arguments (distances, mics) pass through.
        """
        from repro.attacks.scenario import AttackScenario

        override = self.barrier_material()
        if override is not None:
            room_config = replace(room_config, barrier=override)
        return AttackScenario(
            room_config=room_config,
            attack_channel=self.build_attack_channel(),
            **kwargs,
        )

    def build_sensor(self) -> "CrossDomainSensor":  # noqa: F821
        """The wearable's cross-domain sensor for this scenario."""
        from repro.sensing.cross_domain import CrossDomainSensor

        if not self.sensor_stages:
            return CrossDomainSensor()
        return CrossDomainSensor(
            channel=PropagationChannel(
                stages=tuple(self.sensor_stages),
                name=f"{self.name}-replay",
            )
        )

    def build_defense_config(self, **overrides) -> "DefenseConfig":  # noqa: F821
        """A :class:`~repro.core.pipeline.DefenseConfig` for the spec."""
        from repro.core.detector import DetectorConfig
        from repro.core.pipeline import DefenseConfig

        settings = dict(
            detector=DetectorConfig(threshold=self.detector_threshold),
            wearer_moving=self.wearer_moving,
        )
        settings.update(overrides)
        return DefenseConfig(**settings)

    def build_pipeline(
        self, segmenter=None, **config_overrides
    ) -> "DefensePipeline":  # noqa: F821
        """A full defense pipeline wired for this scenario."""
        from repro.core.pipeline import DefensePipeline

        return DefensePipeline(
            segmenter=segmenter,
            sensor=self.build_sensor(),
            config=self.build_defense_config(**config_overrides),
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(
    spec: ScenarioSpec, replace_existing: bool = False
) -> ScenarioSpec:
    """Add ``spec`` to the registry under its name.

    Re-registering an identical spec is a no-op (imports must stay
    idempotent); a *different* spec under a taken name raises unless
    ``replace_existing`` is set.
    """
    existing = _REGISTRY.get(spec.name)
    if existing is not None and not replace_existing:
        if existing == spec:
            return spec
        raise ConfigurationError(
            f"scenario {spec.name!r} is already registered with a "
            "different spec; pass replace_existing=True to override"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario by name with a helpful error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: {list(list_scenarios())}"
        ) from None


def list_scenarios() -> Tuple[str, ...]:
    """Sorted names of every registered scenario."""
    return tuple(sorted(_REGISTRY))
