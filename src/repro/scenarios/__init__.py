"""Scenario registry: named attack × material × channel × detector packs.

Importing this package registers the built-in packs; ``--scenario
<name>`` on the evaluate/serve/loadgen CLIs resolves names through
:func:`get_scenario`.
"""

from repro.scenarios.registry import (
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.scenarios import packs  # noqa: F401  (registers built-ins)

__all__ = [
    "ScenarioSpec",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
]
