"""Input-validation helpers shared across the library.

These raise :class:`repro.errors.SignalError` / ``ConfigurationError`` with
actionable messages instead of letting numpy raise opaque shape errors deep
inside a pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, SignalError


def ensure_1d(signal: np.ndarray, name: str = "signal") -> np.ndarray:
    """Return ``signal`` as a contiguous 1-D float64 array or raise."""
    array = np.asarray(signal, dtype=np.float64)
    if array.ndim != 1:
        raise SignalError(f"{name} must be 1-D, got shape {array.shape}")
    if array.size == 0:
        raise SignalError(f"{name} must be non-empty")
    return np.ascontiguousarray(array)


def ensure_2d(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Return ``matrix`` as a contiguous 2-D float64 array or raise."""
    array = np.asarray(matrix, dtype=np.float64)
    if array.ndim != 2:
        raise SignalError(f"{name} must be 2-D, got shape {array.shape}")
    if array.size == 0:
        raise SignalError(f"{name} must be non-empty")
    return np.ascontiguousarray(array)


def ensure_positive(value: float, name: str) -> float:
    """Validate that a scalar configuration value is strictly positive."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be finite and > 0, got {value}")
    return value


def ensure_probability(value: float, name: str) -> float:
    """Validate that a scalar lies in the closed interval [0, 1]."""
    value = float(value)
    if not np.isfinite(value) or value < 0 or value > 1:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return value


def ensure_sample_rate(value: float, name: str = "sample_rate") -> float:
    """Validate a sampling rate (finite, > 0)."""
    return ensure_positive(value, name)
