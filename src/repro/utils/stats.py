"""Shared quantile/percentile computation.

Latency percentiles (serving metrics, loadgen reports, stage-event
summaries) and bootstrap interval tails (evaluation statistics) all
reduce a sample list to a handful of quantiles.  This module is the
single implementation they share, with the edge cases pinned: an empty
sample set yields NaNs rather than raising, and a single sample is its
own value at every quantile.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Percentiles reported for every latency distribution (p50/p95/p99).
REPORTED_PERCENTILES = (50.0, 95.0, 99.0)


def quantile_values(
    samples: Sequence[float], fractions: Sequence[float]
) -> np.ndarray:
    """Quantiles of ``samples`` at ``fractions`` (each in ``[0, 1]``).

    Returns one value per requested fraction, computed with NumPy's
    default linear interpolation.  An empty sample set returns NaNs of
    the same shape; a single sample is returned for every fraction.
    """
    fracs = np.atleast_1d(np.asarray(fractions, dtype=np.float64))
    if fracs.size and (fracs.min() < 0.0 or fracs.max() > 1.0):
        raise ConfigurationError(
            f"quantile fractions must lie in [0, 1], got {fractions!r}"
        )
    values = np.asarray(samples, dtype=np.float64).ravel()
    if values.size == 0:
        return np.full(fracs.shape, np.nan)
    return np.quantile(values, fracs)


def percentile_values(
    samples: Sequence[float], percentiles: Sequence[float]
) -> np.ndarray:
    """:func:`quantile_values` with percentile (0–100) arguments.

    Bitwise-equivalent to ``np.percentile`` on non-empty input (the
    same divide-by-100 then ``np.quantile`` path NumPy takes).
    """
    fractions = (
        np.atleast_1d(np.asarray(percentiles, dtype=np.float64)) / 100.0
    )
    return quantile_values(samples, fractions)


def percentile(samples: Sequence[float], q: float) -> float:
    """Single percentile as a float (NaN on an empty sample set)."""
    return float(percentile_values(samples, [float(q)])[0])
