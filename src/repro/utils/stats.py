"""Shared quantile/percentile computation.

Latency percentiles (serving metrics, loadgen reports, stage-event
summaries) and bootstrap interval tails (evaluation statistics) all
reduce a sample list to a handful of quantiles.  This module is the
single implementation they share, with the edge cases pinned: an empty
sample set yields NaNs rather than raising, a single sample is its own
value at every quantile, and NaN samples (e.g. a failed request whose
latency was never measured) are dropped — with a logged count — rather
than silently poisoning every reported p50/p95/p99.
"""

from __future__ import annotations

import logging
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

logger = logging.getLogger(__name__)

#: Percentiles reported for every latency distribution (p50/p95/p99).
REPORTED_PERCENTILES = (50.0, 95.0, 99.0)


def drop_nan_samples(
    samples: Sequence[float],
) -> Tuple[np.ndarray, int]:
    """``(finite-or-inf samples, n_dropped)`` as a flat float64 array.

    Only NaNs are dropped; infinities are real (if degenerate) sample
    values and are kept for the quantile interpolation to see.
    """
    values = np.asarray(samples, dtype=np.float64).ravel()
    nan_mask = np.isnan(values)
    n_dropped = int(nan_mask.sum())
    if n_dropped:
        values = values[~nan_mask]
    return values, n_dropped


def quantile_values(
    samples: Sequence[float], fractions: Sequence[float]
) -> np.ndarray:
    """Quantiles of ``samples`` at ``fractions`` (each in ``[0, 1]``).

    Returns one value per requested fraction, computed with NumPy's
    default linear interpolation.  NaN samples are dropped first (one
    NaN must not turn every reported percentile into NaN); the dropped
    count is logged.  An empty — or all-NaN — sample set returns NaNs
    of the requested shape; a single sample is returned for every
    fraction.
    """
    fracs = np.atleast_1d(np.asarray(fractions, dtype=np.float64))
    if fracs.size and (fracs.min() < 0.0 or fracs.max() > 1.0):
        raise ConfigurationError(
            f"quantile fractions must lie in [0, 1], got {fractions!r}"
        )
    values, n_dropped = drop_nan_samples(samples)
    if n_dropped:
        logger.warning(
            "dropped %d NaN sample(s) of %d before computing quantiles",
            n_dropped,
            values.size + n_dropped,
        )
    if values.size == 0:
        return np.full(fracs.shape, np.nan)
    return np.quantile(values, fracs)


def percentile_values(
    samples: Sequence[float], percentiles: Sequence[float]
) -> np.ndarray:
    """:func:`quantile_values` with percentile (0–100) arguments.

    Bitwise-equivalent to ``np.percentile`` on non-empty input (the
    same divide-by-100 then ``np.quantile`` path NumPy takes).
    """
    fractions = (
        np.atleast_1d(np.asarray(percentiles, dtype=np.float64)) / 100.0
    )
    return quantile_values(samples, fractions)


def percentile(samples: Sequence[float], q: float) -> float:
    """Single percentile as a float (NaN on an empty sample set)."""
    return float(percentile_values(samples, [float(q)])[0])
