"""Shared utilities: deterministic RNG plumbing and small helpers."""

from repro.utils.rng import (
    DEFAULT_SEED,
    as_generator,
    child_rng,
    spawn_rngs,
)
from repro.utils.stats import (
    REPORTED_PERCENTILES,
    percentile,
    percentile_values,
    quantile_values,
)
from repro.utils.validation import (
    ensure_1d,
    ensure_2d,
    ensure_positive,
    ensure_probability,
)

__all__ = [
    "DEFAULT_SEED",
    "REPORTED_PERCENTILES",
    "as_generator",
    "child_rng",
    "spawn_rngs",
    "percentile",
    "percentile_values",
    "quantile_values",
    "ensure_1d",
    "ensure_2d",
    "ensure_positive",
    "ensure_probability",
]
