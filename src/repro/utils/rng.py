"""Deterministic random-number-generator plumbing.

All stochastic components in the library accept either an integer seed or a
:class:`numpy.random.Generator`.  Experiments are reproducible because every
source of randomness is derived from an explicitly passed seed; nothing in
the library touches numpy's global RNG state.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

#: Seed used when a caller passes ``None``.  Experiments that must be
#: reproducible should always pass their own seed.
DEFAULT_SEED = 0x1CDC5


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged, so components can
    share one stream when the caller wants correlated draws, or receive
    independent child streams via :func:`child_rng`.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def child_seed(rng: np.random.Generator, label: str) -> int:
    """Derive an independent child *seed* keyed by ``label``.

    Consumes exactly one draw from ``rng`` (the same draw
    :func:`child_rng` makes), so ``as_generator(child_seed(rng, label))``
    produces a stream identical to ``child_rng(rng, label)``.  The
    integer form is hashable, which lets caches key synthesized material
    on it (see :meth:`repro.phonemes.corpus.SyntheticCorpus.utterance`).
    """
    label_key = np.frombuffer(label.encode("utf-8"), dtype=np.uint8)
    mix = int(label_key.sum()) + 1000003 * len(label_key)
    return int(rng.integers(0, 2**63 - 1)) ^ mix


def child_rng(rng: np.random.Generator, label: str) -> np.random.Generator:
    """Derive an independent child generator keyed by ``label``.

    The label is hashed into the child seed so two differently-labelled
    children of the same parent never share a stream, while the derivation
    stays deterministic for a given parent state.
    """
    return np.random.default_rng(child_seed(rng, label))


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning, which guarantees
    statistical independence between the returned streams.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**63 - 1))
    elif seed is None:
        base = DEFAULT_SEED
    else:
        base = int(seed)
    sequence = np.random.SeedSequence(base)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def derive_seed(seed: SeedLike, *labels: object) -> int:
    """Derive a stable integer seed from a base seed and a label tuple.

    Used by the evaluation campaign to give every (participant, room,
    attack, trial) combination its own reproducible stream.
    """
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**63 - 1))
    elif seed is None:
        base = DEFAULT_SEED
    else:
        base = int(seed)
    accumulator = base & 0xFFFFFFFFFFFF
    for label in labels:
        for char in str(label):
            accumulator = (accumulator * 1000003 + ord(char)) & 0xFFFFFFFFFFFF
        accumulator = (accumulator * 31 + 17) & 0xFFFFFFFFFFFF
    return accumulator


def stable_fingerprint(*parts: object) -> int:
    """Stable, process-independent integer fingerprint of a label tuple.

    Unlike :func:`hash`, the result does not depend on
    ``PYTHONHASHSEED`` or the process, so it can key caches that must
    agree across worker processes — e.g. the serving layer's
    batch-compatibility classes, which group requests by
    ``(audio_rate, config fingerprint)``.
    """
    return derive_seed(0x5EEDF00D, *parts)
