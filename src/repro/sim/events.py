"""Virtual clock and discrete-event scheduler."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigurationError, ProtocolError


class SimClock:
    """Monotonic virtual clock (seconds)."""

    def __init__(self, start_s: float = 0.0) -> None:
        self._now = float(start_s)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, time_s: float) -> None:
        """Move the clock forward; moving backwards is a protocol error."""
        if time_s < self._now - 1e-12:
            raise ProtocolError(
                f"clock cannot move backwards: {self._now} -> {time_s}"
            )
        self._now = float(time_s)


class EventScheduler:
    """Priority-queue discrete-event loop driving a :class:`SimClock`.

    Events scheduled for the same instant fire in scheduling order
    (stable tie-breaking by sequence number), which keeps protocol
    traces deterministic.
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock or SimClock()
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._processed = 0

    def schedule_at(
        self, time_s: float, action: Callable[[], None]
    ) -> None:
        """Schedule ``action`` to fire at absolute virtual time ``time_s``."""
        if time_s < self.clock.now - 1e-12:
            raise ConfigurationError(
                f"cannot schedule in the past: now={self.clock.now}, "
                f"requested={time_s}"
            )
        heapq.heappush(
            self._queue, (float(time_s), next(self._sequence), action)
        )

    def schedule_in(
        self, delay_s: float, action: Callable[[], None]
    ) -> None:
        """Schedule ``action`` after a relative delay."""
        if delay_s < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay_s}")
        self.schedule_at(self.clock.now + delay_s, action)

    @property
    def pending(self) -> int:
        """Number of scheduled-but-unfired events."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events fired so far."""
        return self._processed

    def run(self, until_s: Optional[float] = None) -> int:
        """Fire events in time order, optionally stopping at ``until_s``.

        Returns the number of events processed by this call.
        """
        fired = 0
        while self._queue:
            time_s, _, action = self._queue[0]
            if until_s is not None and time_s > until_s:
                break
            heapq.heappop(self._queue)
            self.clock.advance_to(time_s)
            action()
            fired += 1
            self._processed += 1
        if until_s is not None and self.clock.now < until_s:
            self.clock.advance_to(until_s)
        return fired
