"""Local-network message passing with latency and jitter.

Models the WiFi LAN connecting the VA device, the wearable, and the
cloud relay.  Message delivery delay is the paper's ~100 ms trigger
latency; drops are supported for fault-injection tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError, ProtocolError
from repro.sim.events import EventScheduler
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class Message:
    """One network message."""

    sender: str
    recipient: str
    payload: object
    sent_at_s: float


@dataclass
class NetworkConfig:
    """Latency/loss model of the LAN.

    Attributes
    ----------
    mean_delay_s:
        Average one-way delivery delay (paper: ~100 ms for the
        wake-word trigger path through the cloud service).
    jitter_s:
        Standard deviation of the delay.
    min_delay_s:
        Hard floor on delivery delay.
    drop_probability:
        Probability a message is silently lost (fault injection).
    """

    mean_delay_s: float = 0.1
    jitter_s: float = 0.03
    min_delay_s: float = 0.005
    drop_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_delay_s < 0 or self.jitter_s < 0:
            raise ConfigurationError("delays must be >= 0")
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ConfigurationError(
                "drop_probability must be in [0, 1]"
            )


class Network:
    """Delivers messages between registered nodes via the scheduler."""

    def __init__(
        self,
        scheduler: EventScheduler,
        config: Optional[NetworkConfig] = None,
        rng: SeedLike = None,
    ) -> None:
        self.scheduler = scheduler
        self.config = config or NetworkConfig()
        self._rng = as_generator(rng)
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        self.delivered = 0
        self.dropped = 0

    def register(
        self, name: str, handler: Callable[[Message], None]
    ) -> None:
        """Register a node's message handler under ``name``."""
        if name in self._handlers:
            raise ConfigurationError(f"node {name!r} already registered")
        self._handlers[name] = handler

    def send(self, sender: str, recipient: str, payload: object) -> None:
        """Send a message; it arrives after a sampled network delay."""
        if recipient not in self._handlers:
            raise ProtocolError(f"unknown recipient {recipient!r}")
        if self._rng.random() < self.config.drop_probability:
            self.dropped += 1
            return
        delay = max(
            float(
                self._rng.normal(
                    self.config.mean_delay_s, self.config.jitter_s
                )
            ),
            self.config.min_delay_s,
        )
        message = Message(
            sender=sender,
            recipient=recipient,
            payload=payload,
            sent_at_s=self.scheduler.clock.now,
        )

        def deliver() -> None:
            self.delivered += 1
            self._handlers[recipient](message)

        self.scheduler.schedule_in(delay, deliver)
