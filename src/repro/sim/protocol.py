"""The cross-device recording protocol and its driver.

Implements the paper's § VI-A flow end-to-end on the discrete-event
substrate: wake word at the VA → trigger via cloud relay (network
latency) → both devices record → the VA ships its recording to the
wearable → the wearable runs detection once both recordings are in.
:func:`run_synchronized_recording` wires a whole session together given
an acoustic scene and returns the two (offset) recordings exactly as the
defense pipeline receives them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.errors import ProtocolError
from repro.sim.devices import CloudRelay, VANode, WearableNode
from repro.sim.events import EventScheduler
from repro.sim.network import Network, NetworkConfig
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class TriggerMessage:
    """Wake-word trigger relayed to the wearable."""

    forward_to: str
    triggered_at_s: float


@dataclass(frozen=True)
class AckMessage:
    """Wearable's acknowledgement (stops the VA's retransmission).

    ``kind`` says what is being acknowledged: ``"trigger"`` or
    ``"recording"``.
    """

    forward_to: str
    kind: str = "trigger"


@dataclass(frozen=True)
class RecordingMessage:
    """The VA's finished recording, shipped to the wearable."""

    forward_to: str
    samples: Optional[np.ndarray]
    started_at_s: float


@dataclass(frozen=True)
class RecordingSession:
    """Result of one simulated recording session."""

    va_recording: np.ndarray
    wearable_recording: np.ndarray
    trigger_delay_s: float
    va_log: Tuple[str, ...]
    wearable_log: Tuple[str, ...]


def run_synchronized_recording(
    va_sound_field: np.ndarray,
    wearable_sound_field: np.ndarray,
    sample_rate: float,
    network_config: Optional[NetworkConfig] = None,
    recording_duration_s: Optional[float] = None,
    rng: SeedLike = None,
) -> RecordingSession:
    """Simulate one wake-word-triggered recording session.

    Parameters
    ----------
    va_sound_field / wearable_sound_field:
        The acoustic signal arriving at each device over the session,
        both starting at virtual time 0 (the wake-word instant).
    sample_rate:
        Audio sampling rate.
    network_config:
        LAN latency model (the paper's ~100 ms trigger delay).
    recording_duration_s:
        How long each device records; defaults to the full sound field.

    Returns
    -------
    RecordingSession
        The two recordings with the wearable's genuine network-induced
        start offset, plus both nodes' protocol traces.
    """
    va_field = np.asarray(va_sound_field, dtype=np.float64)
    wearable_field = np.asarray(wearable_sound_field, dtype=np.float64)
    if va_field.ndim != 1 or wearable_field.ndim != 1:
        raise ProtocolError("sound fields must be 1-D")
    duration_s = recording_duration_s or va_field.size / sample_rate

    scheduler = EventScheduler()
    network = Network(scheduler, network_config, rng=rng)
    cloud = CloudRelay(network, scheduler)
    va = VANode(
        network, scheduler, recording_duration_s=duration_s
    )
    wearable = WearableNode(
        network, scheduler, recording_duration_s=duration_s
    )

    def capture_from(field: np.ndarray) -> Callable[[float, float], np.ndarray]:
        def capture(start_s: float, stop_s: float) -> np.ndarray:
            begin = int(round(start_s * sample_rate))
            end = int(round(stop_s * sample_rate))
            begin = min(max(begin, 0), field.size)
            end = min(max(end, begin), field.size)
            return field[begin:end].copy()

        return capture

    va.set_capture(capture_from(va_field))
    wearable.set_capture(capture_from(wearable_field))

    va.wake_word_detected()
    scheduler.run()

    if not wearable.has_both_recordings:
        raise ProtocolError(
            "session ended without both recordings (message lost?)"
        )
    trigger_delay = wearable.recording.started_at_s
    return RecordingSession(
        va_recording=va.recording.samples,
        wearable_recording=wearable.recording.samples,
        trigger_delay_s=trigger_delay,
        va_log=tuple(va.log),
        wearable_log=tuple(wearable.log),
    )
