"""Distributed-device substrate: virtual time, LAN, protocol nodes.

The defense spans two devices coordinated over a local WiFi network.
This package provides a small discrete-event simulator — a virtual
clock, an event scheduler, a latency-modelled message network — and the
VA/wearable node implementations that run the paper's cross-device
synchronization protocol on top of it.
"""

from repro.sim.events import EventScheduler, SimClock
from repro.sim.network import Network, NetworkConfig, Message
from repro.sim.devices import VANode, WearableNode, CloudRelay
from repro.sim.protocol import (
    RecordingSession,
    TriggerMessage,
    run_synchronized_recording,
)

__all__ = [
    "EventScheduler",
    "SimClock",
    "Network",
    "NetworkConfig",
    "Message",
    "VANode",
    "WearableNode",
    "CloudRelay",
    "RecordingSession",
    "TriggerMessage",
    "run_synchronized_recording",
]
