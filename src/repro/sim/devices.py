"""Protocol nodes: VA device, wearable, and the cloud relay.

Each node owns a mailbox on the simulated network and implements its
side of the cross-device recording protocol: the VA detects the wake
word and notifies the wearable (via the cloud relay) to start recording;
both then capture the command, and the wearable aggregates the two
recordings for cross-domain sensing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.errors import ProtocolError
from repro.sim.events import EventScheduler
from repro.sim.network import Message, Network


@dataclass
class RecordingWindow:
    """One device's recording interval and captured samples."""

    started_at_s: float
    samples: Optional[np.ndarray] = None
    stopped_at_s: Optional[float] = None


class _Node:
    """Base class wiring a node into the network."""

    def __init__(
        self, name: str, network: Network, scheduler: EventScheduler
    ) -> None:
        self.name = name
        self.network = network
        self.scheduler = scheduler
        network.register(name, self.on_message)
        self.log: List[str] = []

    def on_message(self, message: Message) -> None:  # pragma: no cover
        raise NotImplementedError

    def _trace(self, text: str) -> None:
        self.log.append(f"[{self.scheduler.clock.now:8.3f}s] {text}")


class CloudRelay(_Node):
    """The cloud service relaying trigger messages between devices.

    Real VA ecosystems route device-to-device notifications through a
    cloud service; the relay adds one more network hop of latency.
    """

    def __init__(
        self, network: Network, scheduler: EventScheduler,
        name: str = "cloud",
    ) -> None:
        super().__init__(name, network, scheduler)

    def on_message(self, message: Message) -> None:
        """Forward any payload with a ``forward_to`` attribute."""
        payload = message.payload
        target = getattr(payload, "forward_to", None)
        if target is None:
            raise ProtocolError(
                f"cloud relay got unroutable payload {payload!r}"
            )
        self._trace(
            f"relay {type(payload).__name__} from {message.sender} "
            f"to {target}"
        )
        self.network.send(self.name, target, payload)


class VANode(_Node):
    """The voice-assistant device's protocol logic."""

    #: Seconds to wait for the wearable's acknowledgement before
    #: retransmitting the trigger.
    ACK_TIMEOUT_S = 0.4

    def __init__(
        self,
        network: Network,
        scheduler: EventScheduler,
        name: str = "va",
        wearable_name: str = "wearable",
        cloud_name: str = "cloud",
        recording_duration_s: float = 3.0,
        max_trigger_retries: int = 3,
    ) -> None:
        super().__init__(name, network, scheduler)
        self.wearable_name = wearable_name
        self.cloud_name = cloud_name
        self.recording_duration_s = recording_duration_s
        self.max_trigger_retries = max_trigger_retries
        self.recording: Optional[RecordingWindow] = None
        self.trigger_acked = False
        self.trigger_attempts = 0
        self.recording_acked = False
        self.recording_attempts = 0
        self._capture: Optional[Callable[[float, float], np.ndarray]] = None
        self._wake_time_s: Optional[float] = None

    def set_capture(
        self, capture: Callable[[float, float], np.ndarray]
    ) -> None:
        """Install the acoustic capture callback ``(start, stop) -> samples``."""
        self._capture = capture

    def wake_word_detected(self) -> None:
        """Wake word fired: start recording and notify the wearable."""
        now = self.scheduler.clock.now
        self._trace("wake word detected; recording + triggering wearable")
        self.recording = RecordingWindow(started_at_s=now)
        self._wake_time_s = now
        self._send_trigger()
        self.scheduler.schedule_in(
            self.recording_duration_s, self._stop_recording
        )

    def _send_trigger(self) -> None:
        """(Re)transmit the trigger until the wearable acknowledges."""
        from repro.sim.protocol import TriggerMessage

        if self.trigger_acked:
            return
        if self.trigger_attempts > self.max_trigger_retries:
            self._trace(
                "trigger retries exhausted; wearable unreachable"
            )
            return
        self.trigger_attempts += 1
        if self.trigger_attempts > 1:
            self._trace(
                f"retransmitting trigger (attempt "
                f"{self.trigger_attempts})"
            )
        self.network.send(
            self.name,
            self.cloud_name,
            TriggerMessage(
                forward_to=self.wearable_name,
                triggered_at_s=self._wake_time_s,
            ),
        )
        self.scheduler.schedule_in(self.ACK_TIMEOUT_S, self._send_trigger)

    def _stop_recording(self) -> None:
        if self.recording is None:
            raise ProtocolError("stop without an active recording")
        now = self.scheduler.clock.now
        self.recording.stopped_at_s = now
        if self._capture is not None:
            self.recording.samples = self._capture(
                self.recording.started_at_s, now
            )
        self._trace("recording stopped; sending to wearable")
        self._send_recording()

    def _send_recording(self) -> None:
        """(Re)transmit the recording until the wearable acknowledges."""
        from repro.sim.protocol import RecordingMessage

        if self.recording_acked:
            return
        if self.recording_attempts > self.max_trigger_retries:
            self._trace("recording retries exhausted")
            return
        self.recording_attempts += 1
        if self.recording_attempts > 1:
            self._trace(
                f"retransmitting recording (attempt "
                f"{self.recording_attempts})"
            )
        self.network.send(
            self.name,
            self.cloud_name,
            RecordingMessage(
                forward_to=self.wearable_name,
                samples=self.recording.samples,
                started_at_s=self.recording.started_at_s,
            ),
        )
        self.scheduler.schedule_in(
            self.ACK_TIMEOUT_S, self._send_recording
        )

    def on_message(self, message: Message) -> None:
        from repro.sim.protocol import AckMessage

        payload = message.payload
        if isinstance(payload, AckMessage):
            if payload.kind == "trigger":
                if not self.trigger_acked:
                    self._trace("trigger acknowledged by wearable")
                self.trigger_acked = True
            elif payload.kind == "recording":
                if not self.recording_acked:
                    self._trace("recording acknowledged by wearable")
                self.recording_acked = True
            else:
                raise ProtocolError(
                    f"unknown ack kind {payload.kind!r}"
                )
            return
        raise ProtocolError(
            f"VA node received unexpected message {payload!r}"
        )


class WearableNode(_Node):
    """The wearable's protocol logic: record on trigger, aggregate."""

    def __init__(
        self,
        network: Network,
        scheduler: EventScheduler,
        name: str = "wearable",
        va_name: str = "va",
        cloud_name: str = "cloud",
        recording_duration_s: float = 3.0,
    ) -> None:
        super().__init__(name, network, scheduler)
        self.va_name = va_name
        self.cloud_name = cloud_name
        self.recording_duration_s = recording_duration_s
        self.recording: Optional[RecordingWindow] = None
        self.va_recording: Optional[np.ndarray] = None
        self.va_recording_started_s: Optional[float] = None
        self._capture: Optional[Callable[[float, float], np.ndarray]] = None
        self.on_complete: Optional[
            Callable[["WearableNode"], None]
        ] = None

    def set_capture(
        self, capture: Callable[[float, float], np.ndarray]
    ) -> None:
        """Install the acoustic capture callback ``(start, stop) -> samples``."""
        self._capture = capture

    @property
    def has_both_recordings(self) -> bool:
        """Whether aggregation finished (both recordings present)."""
        return (
            self.recording is not None
            and self.recording.samples is not None
            and self.va_recording is not None
        )

    def on_message(self, message: Message) -> None:
        from repro.sim.protocol import (
            AckMessage,
            RecordingMessage,
            TriggerMessage,
        )

        payload = message.payload
        if isinstance(payload, TriggerMessage):
            # Acknowledge every trigger (the ack itself can be lost);
            # duplicate triggers from retransmission are idempotent.
            self.network.send(
                self.name,
                self.cloud_name,
                AckMessage(forward_to=self.va_name),
            )
            if self.recording is not None:
                self._trace("duplicate trigger ignored (already recording)")
                return
            self._trace(
                "trigger received "
                f"({self.scheduler.clock.now - payload.triggered_at_s:.3f}s "
                "after wake word); recording"
            )
            self.recording = RecordingWindow(
                started_at_s=self.scheduler.clock.now
            )
            self.scheduler.schedule_in(
                self.recording_duration_s, self._stop_recording
            )
        elif isinstance(payload, RecordingMessage):
            self.network.send(
                self.name,
                self.cloud_name,
                AckMessage(forward_to=self.va_name, kind="recording"),
            )
            if self.va_recording is not None:
                self._trace("duplicate VA recording ignored")
                return
            self._trace("VA recording received; aggregating")
            self.va_recording = payload.samples
            self.va_recording_started_s = payload.started_at_s
            self._maybe_complete()
        else:
            raise ProtocolError(
                f"wearable received unexpected payload {payload!r}"
            )

    def _stop_recording(self) -> None:
        if self.recording is None:
            raise ProtocolError("stop without an active recording")
        now = self.scheduler.clock.now
        self.recording.stopped_at_s = now
        if self._capture is not None:
            self.recording.samples = self._capture(
                self.recording.started_at_s, now
            )
        self._trace("wearable recording stopped")
        self._maybe_complete()

    def _maybe_complete(self) -> None:
        if self.has_both_recordings and self.on_complete is not None:
            self._trace("both recordings available; running detection")
            self.on_complete(self)
