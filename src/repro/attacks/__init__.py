"""Attack generators for the four threat-model attacks (paper § II).

Every attack produces an audio waveform to be played by the adversary's
loudspeaker behind the barrier: random (another speaker's voice), replay
(recorded victim audio), voice synthesis (victim-adapted TTS), and hidden
voice (obfuscated wideband commands).
"""

from repro.attacks.base import (
    AttackKind,
    AttackSound,
    IndexedAttackMixin,
    attack_stream,
)
from repro.attacks.random_attack import RandomAttack
from repro.attacks.replay import ReplayAttack
from repro.attacks.synthesis import VoiceSynthesisAttack
from repro.attacks.hidden_voice import HiddenVoiceAttack
from repro.attacks.scenario import AttackScenario, ThruBarrierChannel

__all__ = [
    "AttackKind",
    "AttackSound",
    "IndexedAttackMixin",
    "attack_stream",
    "RandomAttack",
    "ReplayAttack",
    "VoiceSynthesisAttack",
    "HiddenVoiceAttack",
    "AttackScenario",
    "ThruBarrierChannel",
]
