"""Common attack types."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.phonemes.corpus import Utterance
from repro.utils.rng import SeedLike, derive_seed


class AttackKind(enum.Enum):
    """The four thru-barrier attack approaches of the threat model."""

    RANDOM = "random"
    REPLAY = "replay"
    SYNTHESIS = "synthesis"
    HIDDEN_VOICE = "hidden_voice"


def attack_stream(
    seed: SeedLike,
    kind: Union[AttackKind, str],
    index: int,
) -> np.random.Generator:
    """The canonical per-attack RNG stream for scenario-driven attacks.

    Keyed on ``(scenario seed, attack kind, attack index)`` through
    :func:`~repro.utils.rng.derive_seed`, so the ``index``-th attack of
    a kind is the same waveform no matter which worker generates it, in
    which order, or in which process — the reproducibility contract
    red-team populations replayed under process-parallel
    :class:`repro.runtime.Runtime` execution rely on.
    """
    if index < 0:
        raise ValueError(f"index must be >= 0, got {index}")
    kind_label = kind.value if isinstance(kind, AttackKind) else str(kind)
    return np.random.default_rng(
        derive_seed(seed, "attack", kind_label, index)
    )


class IndexedAttackMixin:
    """Adds indexed, stream-derived generation to an attack generator.

    Every generator in :mod:`repro.attacks` exposes
    ``generate_indexed(seed, index, command=None)``: the per-attack RNG
    stream is derived from ``(seed, self.kind, index)`` via
    :func:`attack_stream`, never from shared mutable generator state,
    so attack ``index`` is bitwise independent of how many attacks were
    generated before it.
    """

    def generate_indexed(
        self,
        seed: SeedLike,
        index: int,
        command: Optional[str] = None,
    ) -> "AttackSound":
        """Generate the ``index``-th attack of this generator's stream."""
        return self.generate(
            command=command,
            rng=attack_stream(seed, self.kind, index),
        )


@dataclass(frozen=True)
class AttackSound:
    """An attack waveform ready for playback behind the barrier.

    Attributes
    ----------
    kind:
        Which attack generated it.
    waveform:
        Audio samples (pre-playback; SPL applied by the scenario).
    sample_rate:
        Sampling rate of ``waveform``.
    utterance:
        The underlying aligned utterance when one exists (clear-voice
        attacks); hidden-voice attacks have none.
    description:
        Human-readable provenance for reports.
    """

    kind: AttackKind
    waveform: np.ndarray
    sample_rate: float
    utterance: Optional[Utterance] = None
    description: str = ""
