"""Common attack types."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.phonemes.corpus import Utterance


class AttackKind(enum.Enum):
    """The four thru-barrier attack approaches of the threat model."""

    RANDOM = "random"
    REPLAY = "replay"
    SYNTHESIS = "synthesis"
    HIDDEN_VOICE = "hidden_voice"


@dataclass(frozen=True)
class AttackSound:
    """An attack waveform ready for playback behind the barrier.

    Attributes
    ----------
    kind:
        Which attack generated it.
    waveform:
        Audio samples (pre-playback; SPL applied by the scenario).
    sample_rate:
        Sampling rate of ``waveform``.
    utterance:
        The underlying aligned utterance when one exists (clear-voice
        attacks); hidden-voice attacks have none.
    description:
        Human-readable provenance for reports.
    """

    kind: AttackKind
    waveform: np.ndarray
    sample_rate: float
    utterance: Optional[Utterance] = None
    description: str = ""
