"""Scenario plumbing: who stands where, and what each device records.

:class:`ThruBarrierChannel` models the adversary's acoustic path
(loudspeaker 10 cm behind the barrier → barrier transmission → room) and
:class:`AttackScenario` produces the paired (VA, wearable) recordings the
defense consumes, for both legitimate commands spoken inside the room and
attacks played behind the barrier.

The wearable's recording is started by the WiFi trigger message, so it
lags the VA's by the (jittered) network delay — the paper's residual
synchronization error that the cross-correlation alignment removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.acoustics.barrier import Barrier
from repro.acoustics.loudspeaker import SOUND_BAR, LoudspeakerSpec
from repro.acoustics.microphone import (
    Microphone,
    MicrophoneSpec,
    SMART_SPEAKER_MIC,
    WEARABLE_MIC,
)
from repro.acoustics.propagation import propagate
from repro.acoustics.room import Room, RoomConfig
from repro.acoustics.spl import scale_to_spl
from repro.attacks.base import AttackSound
from repro.channels.graph import PropagationChannel
from repro.channels.stages import BarrierStage, LoudspeakerStage
from repro.errors import ConfigurationError
from repro.phonemes.corpus import Utterance
from repro.utils.rng import SeedLike, as_generator, child_rng
from repro.utils.validation import ensure_positive


@dataclass
class ThruBarrierChannel:
    """Adversary's acoustic path: loudspeaker → barrier → room interior.

    Attributes
    ----------
    barrier:
        The room barrier the sound must pass.
    loudspeaker_spec:
        The adversary's playback device (defaults to a sound bar).
    speaker_to_barrier_m:
        Loudspeaker standoff (paper: 10 cm; below the 1 m propagation
        reference, so it contributes no extra attenuation).
    """

    barrier: Barrier
    loudspeaker_spec: LoudspeakerSpec = field(
        default_factory=lambda: SOUND_BAR
    )
    speaker_to_barrier_m: float = 0.1

    def __post_init__(self) -> None:
        ensure_positive(self.speaker_to_barrier_m, "speaker_to_barrier_m")
        self._channel = PropagationChannel(
            stages=(
                LoudspeakerStage(self.loudspeaker_spec),
                BarrierStage(
                    material=self.barrier.material,
                    thickness_scale=self.barrier.thickness_scale,
                    resonance_db=self.barrier.resonance_db,
                ),
            ),
            name="thru-barrier",
        )

    def transmit(
        self,
        waveform: np.ndarray,
        sample_rate: float,
        spl_db: float,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Sound field just inside the barrier for playback at ``spl_db``."""
        calibrated = scale_to_spl(waveform, spl_db)
        return self._channel.apply(calibrated, sample_rate, rng=rng)


@dataclass
class AttackScenario:
    """One experimental layout: room, distances, devices.

    Attributes
    ----------
    room_config:
        Room geometry, barrier material, ambient level.
    barrier_to_va_m:
        Distance from the barrier to the VA device (paper default: 2 m;
        swept 3–5 m in Fig. 11(c)).
    barrier_to_wearable_m:
        Distance from the barrier to the user's wearable (paper: 2 m).
    user_to_va_m:
        Distance from the speaking user to the VA device (paper: users
        speak at several distances; default 2 m).
    user_to_wearable_m:
        Mouth-to-wrist distance of the user (≈0.4 m).
    va_mic / wearable_mic:
        Microphone models of the two devices.
    wifi_delay_s / wifi_jitter_s:
        Mean and spread of the wake-word trigger network delay.
    """

    room_config: RoomConfig
    barrier_to_va_m: float = 2.0
    barrier_to_wearable_m: float = 2.0
    user_to_va_m: float = 2.0
    user_to_wearable_m: float = 0.4
    va_mic: MicrophoneSpec = field(
        default_factory=lambda: SMART_SPEAKER_MIC
    )
    wearable_mic: MicrophoneSpec = field(
        default_factory=lambda: WEARABLE_MIC
    )
    wifi_delay_s: float = 0.1
    wifi_jitter_s: float = 0.03
    lead_silence_s: float = 0.25
    #: Override for the adversary's injection channel — any object with
    #: ``transmit(waveform, sample_rate, spl_db, rng)``, e.g. a
    #: :class:`repro.channels.InjectionChannel` from a scenario pack.
    #: ``None`` builds the classic thru-barrier channel from the room's
    #: barrier material.
    attack_channel: Optional[object] = None

    def __post_init__(self) -> None:
        for name in (
            "barrier_to_va_m",
            "barrier_to_wearable_m",
            "user_to_va_m",
            "user_to_wearable_m",
        ):
            ensure_positive(getattr(self, name), name)
        if self.wifi_delay_s < 0 or self.wifi_jitter_s < 0:
            raise ConfigurationError("WiFi delay parameters must be >= 0")
        self.room = Room(self.room_config)
        if self.attack_channel is not None:
            self.channel = self.attack_channel
        else:
            self.channel = ThruBarrierChannel(
                barrier=Barrier(self.room_config.barrier)
            )
        self._va_microphone = Microphone(self.va_mic)
        self._wearable_microphone = Microphone(self.wearable_mic)

    # ------------------------------------------------------------------
    # Recording generation
    # ------------------------------------------------------------------

    def attack_recordings(
        self,
        attack: AttackSound,
        spl_db: float = 75.0,
        rng: SeedLike = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(VA, wearable) recordings of an attack behind the barrier."""
        generator = as_generator(rng)
        interior = self.channel.transmit(
            attack.waveform,
            attack.sample_rate,
            spl_db,
            rng=child_rng(generator, "barrier"),
        )
        return self._record_both(
            interior,
            attack.sample_rate,
            source_to_va_m=self.barrier_to_va_m,
            source_to_wearable_m=self.barrier_to_wearable_m,
            generator=generator,
        )

    def legitimate_recordings(
        self,
        utterance: Utterance,
        spl_db: float = 70.0,
        rng: SeedLike = None,
        user_to_va_m: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(VA, wearable) recordings of the user speaking in the room.

        ``user_to_va_m`` overrides the scenario's default distance for
        this call only, so callers sampling several speaking distances
        never have to mutate (and risk leaking state through) a shared
        scenario object.
        """
        generator = as_generator(rng)
        if user_to_va_m is None:
            user_to_va_m = self.user_to_va_m
        else:
            ensure_positive(user_to_va_m, "user_to_va_m")
        source = scale_to_spl(utterance.waveform, spl_db)
        return self._record_both(
            source,
            utterance.sample_rate,
            source_to_va_m=user_to_va_m,
            source_to_wearable_m=self.user_to_wearable_m,
            generator=generator,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _record_both(
        self,
        source: np.ndarray,
        sample_rate: float,
        source_to_va_m: float,
        source_to_wearable_m: float,
        generator: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        lead = np.zeros(int(round(self.lead_silence_s * sample_rate)))
        padded = np.concatenate([lead, source, lead])

        at_va = propagate(padded, sample_rate, source_to_va_m)
        at_wearable = propagate(padded, sample_rate, source_to_wearable_m)
        at_va = self.room.add_reverberation(
            at_va, sample_rate, rng=child_rng(generator, "reverb-va")
        )
        at_wearable = self.room.add_reverberation(
            at_wearable, sample_rate,
            rng=child_rng(generator, "reverb-wear"),
        )
        at_va = at_va + self.room.ambient_noise(
            at_va.size / sample_rate, sample_rate,
            rng=child_rng(generator, "amb-va"),
        )[: at_va.size]
        at_wearable = at_wearable + self.room.ambient_noise(
            at_wearable.size / sample_rate, sample_rate,
            rng=child_rng(generator, "amb-wear"),
        )[: at_wearable.size]

        va_recording = self._va_microphone.capture(
            at_va, sample_rate, rng=child_rng(generator, "mic-va")
        )
        wearable_recording = self._wearable_microphone.capture(
            at_wearable, sample_rate, rng=child_rng(generator, "mic-wear")
        )

        # The wearable starts recording only when the WiFi trigger
        # arrives; it misses the first ``delay`` of the command.
        delay_s = max(
            0.0,
            self.wifi_delay_s
            + float(generator.normal(0.0, self.wifi_jitter_s)),
        )
        delay_samples = int(round(delay_s * sample_rate))
        if delay_samples > 0:
            wearable_recording = wearable_recording[delay_samples:]
        return va_recording, wearable_recording
