"""Hidden voice attack: obfuscated commands (Carlini et al. style).

Hidden voice commands are engineered to be recognized by machine speech
recognizers while sounding like noise to humans.  Acoustically they keep
the command's temporal envelope and a skeleton of its spectral peaks but
replace the fine structure with wideband noise spanning roughly 0–6 kHz —
the paper notes this wider band makes the barrier's frequency selectivity
*more* visible, which is why its defense reaches ~0 % EER against them.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.attacks.base import AttackKind, AttackSound, IndexedAttackMixin
from repro.dsp.filters import butter_lowpass
from repro.errors import ConfigurationError
from repro.phonemes.commands import VA_COMMANDS, phonemize
from repro.phonemes.corpus import SyntheticCorpus
from repro.phonemes.speaker import SpeakerProfile
from repro.utils.rng import SeedLike, as_generator, child_rng


class HiddenVoiceAttack(IndexedAttackMixin):
    """Generates noise-like obfuscated voice commands."""

    kind = AttackKind.HIDDEN_VOICE

    #: Upper edge of the obfuscated commands' wideband content.
    BANDWIDTH_HZ = 6000.0

    def __init__(
        self,
        corpus: SyntheticCorpus,
        template_speaker: Optional[SpeakerProfile] = None,
        commands: Sequence[str] = VA_COMMANDS,
    ) -> None:
        if not commands:
            raise ConfigurationError("commands must be non-empty")
        self.corpus = corpus
        self.template_speaker = (
            template_speaker or corpus.speakers[0]
        )
        self.commands = tuple(commands)

    def generate(
        self,
        command: Optional[str] = None,
        rng: SeedLike = None,
    ) -> AttackSound:
        """Obfuscate one command into a noise-like attack sound."""
        generator = as_generator(rng)
        if command is None:
            command = self.commands[
                int(generator.integers(0, len(self.commands)))
            ]
        template = self.corpus.utterance(
            phonemize(command),
            speaker=self.template_speaker,
            text=command,
            rng=child_rng(generator, "template"),
        )
        waveform = self._obfuscate(
            template.waveform,
            template.sample_rate,
            child_rng(generator, "noise"),
        )
        return AttackSound(
            kind=self.kind,
            waveform=waveform,
            sample_rate=template.sample_rate,
            utterance=template,
            description=f"hidden voice command for {command!r}",
        )

    def _obfuscate(
        self,
        template: np.ndarray,
        sample_rate: float,
        generator: np.random.Generator,
    ) -> np.ndarray:
        """Replace fine structure with envelope-shaped wideband noise.

        Keeps (a) the command's amplitude envelope and (b) a heavily
        blurred version of its spectral envelope, mixed with flat noise
        up to ``BANDWIDTH_HZ`` — recognizable to machines that track
        coarse spectro-temporal energy, meaningless to human listeners.
        """
        envelope = butter_lowpass(
            np.abs(template), sample_rate, 30.0, order=2
        )
        envelope = np.clip(envelope, 0.0, None)

        noise = generator.standard_normal(template.size)
        spectrum = np.fft.rfft(noise)
        frequencies = np.fft.rfftfreq(template.size, d=1.0 / sample_rate)
        template_spectrum = np.abs(np.fft.rfft(template))
        # Blur the spectral envelope heavily (octave-scale smoothing).
        kernel = np.ones(129) / 129.0
        blurred = np.convolve(template_spectrum, kernel, mode="same")
        blurred /= blurred.max() + 1e-12
        band = 1.0 / (1.0 + (frequencies / self.BANDWIDTH_HZ) ** 10)
        shaping = band * (0.5 + 0.5 * blurred)
        shaped = np.fft.irfft(spectrum * shaping, n=template.size)

        obfuscated = shaped * envelope
        rms_template = float(np.sqrt(np.mean(template**2)))
        rms_obfuscated = float(np.sqrt(np.mean(obfuscated**2))) + 1e-12
        return obfuscated * (rms_template / rms_obfuscated)
