"""Voice synthesis attack: victim-adapted text-to-speech.

The paper's adversary trains a speaker-adaptive TTS model [Jia et al.
2018] on ~20 victim samples.  The substitution: estimate the victim's
vocal parameters (F0, formant scale, loudness) from a few enrollment
utterances, then re-synthesize the target command through the library's
source–filter engine with typical synthesis artifacts — imperfect
parameter estimates, flattened prosody (reduced jitter), and spectral
smoothing.  The defense never inspects the TTS internals, only the
acoustics of the result, so this preserves the relevant behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from repro.attacks.base import AttackKind, AttackSound, IndexedAttackMixin
from repro.errors import ConfigurationError
from repro.phonemes.commands import VA_COMMANDS, phonemize
from repro.phonemes.corpus import SyntheticCorpus, Utterance
from repro.phonemes.speaker import SpeakerProfile
from repro.utils.rng import SeedLike, as_generator, child_rng, child_seed


@dataclass(frozen=True)
class SpeakerEstimate:
    """Adversary's estimate of the victim's vocal parameters."""

    f0_hz: float
    formant_scale: float
    loudness_db: float


def estimate_speaker(
    enrollment: Sequence[Utterance],
    victim: SpeakerProfile,
    rng: SeedLike = None,
) -> SpeakerEstimate:
    """Estimate vocal parameters from enrollment utterances.

    More enrollment data yields tighter estimates; the residual error
    shrinks with ``1 / sqrt(n)``, modelling TTS adaptation quality.
    """
    if not enrollment:
        raise ConfigurationError("need at least one enrollment utterance")
    generator = as_generator(rng)
    precision = 1.0 / np.sqrt(len(enrollment))
    return SpeakerEstimate(
        f0_hz=float(
            victim.f0_hz * (1.0 + generator.normal(0.0, 0.02 * precision))
        ),
        formant_scale=float(
            victim.formant_scale
            * (1.0 + generator.normal(0.0, 0.015 * precision))
        ),
        loudness_db=float(
            victim.loudness_db + generator.normal(0.0, 1.0 * precision)
        ),
    )


class VoiceSynthesisAttack(IndexedAttackMixin):
    """Synthesizes commands in an (estimated) victim voice."""

    kind = AttackKind.SYNTHESIS

    def __init__(
        self,
        corpus: SyntheticCorpus,
        victim: SpeakerProfile,
        n_enrollment: int = 20,
        commands: Sequence[str] = VA_COMMANDS,
        rng: SeedLike = None,
    ) -> None:
        if not commands:
            raise ConfigurationError("commands must be non-empty")
        if n_enrollment <= 0:
            raise ConfigurationError("n_enrollment must be > 0")
        self.corpus = corpus
        self.victim = victim
        self.commands = tuple(commands)
        generator = as_generator(rng)
        enrollment = [
            corpus.utterance(
                phonemize(
                    self.commands[index % len(self.commands)]
                ),
                speaker=victim,
                # Integer seeds so repeated enrollments (e.g. across the
                # values of a factor sweep) hit the corpus cache.
                rng=child_seed(generator, f"enroll-{index}"),
            )
            for index in range(n_enrollment)
        ]
        estimate = estimate_speaker(
            enrollment, victim, rng=child_rng(generator, "estimate")
        )
        # The cloned voice: victim parameters as estimated, with TTS
        # artifacts — flattened prosody (minimal jitter) and reduced
        # breath noise.
        self.cloned_speaker = replace(
            victim,
            speaker_id=f"{victim.speaker_id}-tts",
            f0_hz=float(np.clip(estimate.f0_hz, 50.0, 400.0)),
            formant_scale=float(
                np.clip(estimate.formant_scale, 0.7, 1.5)
            ),
            loudness_db=estimate.loudness_db,
            jitter=0.002,
            breathiness=max(victim.breathiness * 0.5, 0.02),
        )

    def generate(
        self,
        command: Optional[str] = None,
        rng: SeedLike = None,
    ) -> AttackSound:
        """Synthesize one command in the cloned victim voice."""
        generator = as_generator(rng)
        if command is None:
            command = self.commands[
                int(generator.integers(0, len(self.commands)))
            ]
        utterance = self.corpus.utterance(
            phonemize(command),
            speaker=self.cloned_speaker,
            text=command,
            rng=child_seed(generator, "utterance"),
        )
        waveform = self._spectral_smoothing(
            utterance.waveform, utterance.sample_rate
        )
        return AttackSound(
            kind=self.kind,
            waveform=waveform,
            sample_rate=utterance.sample_rate,
            utterance=utterance,
            description=(
                f"synthesized {self.victim.speaker_id} voice: {command!r}"
            ),
        )

    @staticmethod
    def _spectral_smoothing(
        waveform: np.ndarray, sample_rate: float
    ) -> np.ndarray:
        """Mild high-frequency loss typical of neural vocoders."""
        spectrum = np.fft.rfft(waveform)
        frequencies = np.fft.rfftfreq(waveform.size, d=1.0 / sample_rate)
        rolloff = 1.0 / (1.0 + (frequencies / 6500.0) ** 6)
        return np.fft.irfft(spectrum * rolloff, n=waveform.size)
