"""Random attack: the adversary uses their own voice.

The adversary speaks a voice command in their own voice — no knowledge of
the victim required.  Implemented as utterance synthesis with a speaker
who is *not* the victim.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.attacks.base import AttackKind, AttackSound, IndexedAttackMixin
from repro.errors import ConfigurationError
from repro.phonemes.commands import VA_COMMANDS, phonemize
from repro.phonemes.corpus import SyntheticCorpus
from repro.phonemes.speaker import SpeakerProfile
from repro.utils.rng import SeedLike, as_generator, child_seed


class RandomAttack(IndexedAttackMixin):
    """Generates attack commands in an adversary's own voice."""

    kind = AttackKind.RANDOM

    def __init__(
        self,
        corpus: SyntheticCorpus,
        adversary: SpeakerProfile,
        commands: Sequence[str] = VA_COMMANDS,
    ) -> None:
        if not commands:
            raise ConfigurationError("commands must be non-empty")
        self.corpus = corpus
        self.adversary = adversary
        self.commands = tuple(commands)

    def generate(
        self,
        command: Optional[str] = None,
        rng: SeedLike = None,
    ) -> AttackSound:
        """Produce one attack sound (random command unless specified)."""
        generator = as_generator(rng)
        if command is None:
            command = self.commands[
                int(generator.integers(0, len(self.commands)))
            ]
        utterance = self.corpus.utterance(
            phonemize(command),
            speaker=self.adversary,
            text=command,
            # Integer seed (not a Generator) so the corpus can memoize.
            rng=child_seed(generator, "utterance"),
        )
        return AttackSound(
            kind=self.kind,
            waveform=utterance.waveform,
            sample_rate=utterance.sample_rate,
            utterance=utterance,
            description=(
                f"random attack by {self.adversary.speaker_id}: {command!r}"
            ),
        )
