"""Replay attack: the adversary replays recorded victim audio.

The victim's voice samples (e.g., scraped from public speech) are played
back through a loudspeaker.  The recording step itself is modelled as a
microphone capture of the victim's utterance, so the replayed material
carries recording noise and band-limiting on top of the later playback
distortion applied by the scenario.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.acoustics.microphone import Microphone, MicrophoneSpec, PHONE_MIC
from repro.attacks.base import AttackKind, AttackSound, IndexedAttackMixin
from repro.errors import ConfigurationError
from repro.phonemes.commands import VA_COMMANDS, phonemize
from repro.phonemes.corpus import SyntheticCorpus
from repro.phonemes.speaker import SpeakerProfile
from repro.utils.rng import SeedLike, as_generator, child_rng, child_seed


class ReplayAttack(IndexedAttackMixin):
    """Replays the victim's recorded voice commands."""

    kind = AttackKind.REPLAY

    def __init__(
        self,
        corpus: SyntheticCorpus,
        victim: SpeakerProfile,
        commands: Sequence[str] = VA_COMMANDS,
        recording_mic: MicrophoneSpec = PHONE_MIC,
    ) -> None:
        if not commands:
            raise ConfigurationError("commands must be non-empty")
        self.corpus = corpus
        self.victim = victim
        self.commands = tuple(commands)
        self._recording_mic = Microphone(recording_mic)

    def generate(
        self,
        command: Optional[str] = None,
        rng: SeedLike = None,
    ) -> AttackSound:
        """Produce one replayed victim command."""
        generator = as_generator(rng)
        if command is None:
            command = self.commands[
                int(generator.integers(0, len(self.commands)))
            ]
        utterance = self.corpus.utterance(
            phonemize(command),
            speaker=self.victim,
            text=command,
            # Integer seed (not a Generator) so the corpus can memoize.
            rng=child_seed(generator, "utterance"),
        )
        recorded = self._recording_mic.capture(
            utterance.waveform,
            utterance.sample_rate,
            rng=child_rng(generator, "recording"),
        )
        return AttackSound(
            kind=self.kind,
            waveform=recorded,
            sample_rate=utterance.sample_rate,
            utterance=utterance,
            description=(
                f"replay of {self.victim.speaker_id}'s command {command!r}"
            ),
        )
