"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause without swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or invoked with invalid parameters."""


class SignalError(ReproError):
    """A signal does not satisfy the preconditions of an operation.

    Raised, for example, when a signal is empty, has the wrong
    dimensionality, or is too short for the requested transform.
    """


class SynthesisError(ReproError):
    """Speech synthesis could not produce the requested sound."""


class ModelError(ReproError):
    """A neural-network model is malformed, untrained, or incompatible."""


class ProtocolError(ReproError):
    """A distributed-protocol invariant was violated during simulation."""


class CalibrationError(ReproError):
    """Detector calibration failed (e.g., degenerate score distributions)."""


class WorkerError(ReproError):
    """Picklable surrogate for an exception raised inside a pool worker.

    Process workers may raise exceptions whose types or constructor
    arguments do not survive the pickle trip back to the parent (or
    worse, poison the result channel).  The runtime layer therefore
    wraps every error that crosses a process-pool boundary in this
    type, which carries the original class name, message, and formatted
    traceback as plain strings and is guaranteed to round-trip through
    pickle.
    """

    def __init__(
        self,
        error_type: str,
        message: str,
        traceback_text: str = "",
    ) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.message = message
        self.traceback_text = traceback_text

    def __reduce__(self):
        return (
            type(self),
            (self.error_type, self.message, self.traceback_text),
        )

    @classmethod
    def from_exception(cls, error: BaseException) -> "WorkerError":
        """Wrap ``error`` (idempotent for existing ``WorkerError``s)."""
        if isinstance(error, WorkerError):
            return error
        import traceback

        return cls(
            error_type=type(error).__name__,
            message=str(error),
            traceback_text="".join(
                traceback.format_exception(
                    type(error), error, error.__traceback__
                )
            ),
        )


class BudgetExceededError(ReproError):
    """An optimizing attacker exhausted its oracle query budget.

    Raised by :class:`repro.redteam.ScoreOracle` when a query would
    exceed the per-attacker budget.  The optimizer drivers treat it as
    the normal termination signal for a budget-bounded run; seeing it
    escape means an attacker queried outside its accounted loop.
    """


class ServiceOverloadError(ReproError):
    """The online verification service shed or refused a request.

    Raised when a bounded request queue is full under the ``reject``
    backpressure policy (or a ``block`` enqueue timed out), and attached
    to the responses of requests dropped by the ``shed-oldest`` policy.
    """


class ShardUnavailableError(ReproError):
    """A fleet shard could not accept a request.

    Raised by :class:`repro.fleet.ServiceShard` when its engine is
    stopped, marked failed, or refuses the submission; the front door
    catches it to walk the ring's failover preference list before
    rejecting the request with a retry-after hint.
    """


class StoreError(ReproError):
    """The artifact store could not complete an operation.

    Raised for malformed keys, unusable store roots, and import/export
    failures.  Note that *corrupt entries* do not raise on the read
    path: :meth:`repro.store.ArtifactStore.get` quarantines them and
    reports a miss so callers fall back to recomputing the artifact.
    """


class ArtifactIntegrityError(StoreError):
    """An artifact failed checksum or schema validation.

    Surfaced by explicit integrity checks (``repro store verify`` and
    archive import), never by the load-or-train fast path, which
    degrades to retraining instead.
    """
