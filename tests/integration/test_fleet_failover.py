"""Fleet failover: a shard dies mid-run, no request is lost or doubled.

The scenario the front door exists for: traffic is flowing across the
ring, one shard fails, and the invariants must hold —

* every accepted request resolves exactly once (no drop, no double
  answer),
* requests owned by the dead shard are served by a failover neighbor
  (``rerouted``) or rejected with a retry-after hint, never silently
  lost,
* requests owned by healthy shards are untouched,
* client-side tallies and fleet metrics agree request-for-request.
"""

import collections

import numpy as np

from repro.fleet import (
    FleetConfig,
    FleetFrontDoor,
    FleetRequest,
    SimulatedEngineConfig,
    SloConfig,
    simulated_shard_factory,
)
from repro.serve.request import RequestStatus

AUDIO = np.zeros(160)


def make_fleet(n_shards=3, failover=2, service_time_s=0.002):
    slo = SloConfig(retry_after_s=0.25)
    return FleetFrontDoor(
        simulated_shard_factory(
            engine_config=SimulatedEngineConfig(
                n_workers=1,
                service_time_s=service_time_s,
                queue_capacity=512,
            ),
            slo=slo,
        ),
        FleetConfig(
            n_shards=n_shards,
            failover=failover,
            slo=slo,
            autoscale_interval_s=0.0,
        ),
    )


def request(user, rid):
    return FleetRequest(
        user_id=user,
        va_audio=AUDIO,
        wearable_audio=AUDIO,
        request_id=rid,
        priority=1,  # keep the SLO valve out of this scenario
    )


def test_shard_failure_reroutes_without_losing_requests():
    fleet = make_fleet()
    with fleet:
        victim = "shard-1"
        users = [f"user-{i}" for i in range(60)]
        owners = {user: fleet.ring.owner(user) for user in users}
        assert victim in set(owners.values())

        # Phase 1: healthy fleet — owners answer.
        first = [
            fleet.submit_threadsafe(request(user, f"a-{user}"))
            for user in users
        ]
        responses = [future.result(timeout=10) for future in first]
        assert all(
            r.status is RequestStatus.SERVED and not r.rerouted
            for r in responses
        )

        # Phase 2: kill one shard, then offer the same users again.
        fleet.shards[victim].fail()
        second = [
            fleet.submit_threadsafe(request(user, f"b-{user}"))
            for user in users
        ]
        responses = [future.result(timeout=10) for future in second]

        by_id = collections.Counter(r.request_id for r in responses)
        assert all(count == 1 for count in by_id.values())
        assert len(by_id) == len(users)

        for response in responses:
            owner = owners[response.user_id]
            if owner == victim:
                # Orphaned users degrade to a neighbor shard.
                assert response.status is RequestStatus.SERVED
                assert response.rerouted
                assert response.shard_id != victim
            else:
                assert response.status is RequestStatus.SERVED
                assert not response.rerouted
                assert response.shard_id == owner

        metrics = fleet.metrics()
    orphans = sum(1 for user in users if owners[user] == victim)
    assert orphans > 0
    assert metrics.n_rerouted == orphans
    assert metrics.n_routed == 2 * len(users)
    assert metrics.n_unresolved == 0
    assert not metrics.shards[victim].available


def test_all_shards_down_rejects_with_retry_after():
    fleet = make_fleet(n_shards=2, failover=1)
    with fleet:
        for shard in fleet.shards.values():
            shard.fail()
        response = fleet.verify(request("user-1", "r1"))
        metrics = fleet.metrics()
    assert response.status is RequestStatus.REJECTED
    assert response.retry_after_s == 0.25
    assert "no available shard" in response.error
    assert metrics.n_rejected == 1
    assert metrics.n_unresolved == 0


def test_failover_disabled_rejects_orphans():
    fleet = make_fleet(n_shards=3, failover=0)
    with fleet:
        victim = "shard-0"
        fleet.shards[victim].fail()
        users = [f"user-{i}" for i in range(40)]
        responses = [
            fleet.verify(request(user, f"r-{user}")) for user in users
        ]
        statuses = {
            user: response.status
            for user, response in zip(users, responses)
        }
        for user in users:
            if fleet.ring.owner(user) == victim:
                assert statuses[user] is RequestStatus.REJECTED
            else:
                assert statuses[user] is RequestStatus.SERVED
        metrics = fleet.metrics()
    assert metrics.n_rerouted == 0
    assert metrics.n_unresolved == 0


def test_failure_during_inflight_traffic_drains_cleanly():
    """Kill a shard while its queue is non-empty: everything resolves."""
    fleet = make_fleet(n_shards=3, service_time_s=0.01)
    with fleet:
        victim = "shard-2"
        futures = [
            fleet.submit_threadsafe(request(f"user-{i}", f"r{i}"))
            for i in range(80)
        ]
        fleet.shards[victim].fail()
        responses = [future.result(timeout=10) for future in futures]
        metrics = fleet.metrics()
    # Exactly-once: every submission has exactly one response, and
    # the terminal counts partition the routed total.
    assert len(responses) == 80
    counts = collections.Counter(r.status for r in responses)
    assert sum(counts.values()) == 80
    assert metrics.n_unresolved == 0
    # Requests already queued on the victim when it died resolve as
    # SERVED (its engine drains on stop) — nothing hangs or doubles.
    assert counts[RequestStatus.SERVED] >= 1
