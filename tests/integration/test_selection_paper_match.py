"""Integration: the selection pipeline reproduces the paper's 31/37 set."""

import pytest

from repro.core.phoneme_selection import (
    PhonemeSelectionConfig,
    PhonemeSelector,
)
from repro.phonemes.inventory import (
    PAPER_EXCLUDED_PHONEMES,
    PAPER_SELECTED_PHONEMES,
)


@pytest.mark.slow
def test_selection_matches_paper_exactly():
    selector = PhonemeSelector(
        config=PhonemeSelectionConfig(n_segments=20), seed=42
    )
    result = selector.run()
    assert set(result.selected) == set(PAPER_SELECTED_PHONEMES)
    assert set(result.rejected) == set(PAPER_EXCLUDED_PHONEMES)
    # Failure modes split as the paper describes.
    for weak in ("s", "z", "sh", "th"):
        assert weak in result.satisfies_criterion_1
        assert weak not in result.satisfies_criterion_2
    for loud in ("aa", "ao"):
        assert loud not in result.satisfies_criterion_1
