"""End-to-end integration: corpus → scenario → pipeline → verdicts."""

import numpy as np
import pytest

from repro.attacks.base import AttackKind
from repro.attacks.hidden_voice import HiddenVoiceAttack
from repro.attacks.random_attack import RandomAttack
from repro.attacks.replay import ReplayAttack
from repro.attacks.scenario import AttackScenario
from repro.attacks.synthesis import VoiceSynthesisAttack
from repro.core.pipeline import DefensePipeline
from repro.core.segmentation import PhonemeSegmenter
from repro.eval.metrics import evaluate_scores
from repro.eval.rooms import ROOM_A
from repro.phonemes.commands import VA_COMMANDS, phonemize
from repro.phonemes.corpus import SyntheticCorpus


@pytest.fixture(scope="module")
def world():
    corpus = SyntheticCorpus(n_speakers=4, seed=55)
    scenario = AttackScenario(room_config=ROOM_A)
    pipeline = DefensePipeline(segmenter=PhonemeSegmenter(rng=1))
    return corpus, scenario, pipeline


def _legit_scores(world, n=5):
    corpus, scenario, pipeline = world
    victim = corpus.speakers[0]
    scores = []
    for i in range(n):
        command = VA_COMMANDS[i % len(VA_COMMANDS)]
        utterance = corpus.utterance(
            phonemize(command), speaker=victim, rng=100 + i
        )
        va, wearable = scenario.legitimate_recordings(
            utterance, spl_db=65.0 + 5.0 * (i % 3), rng=200 + i
        )
        scores.append(
            pipeline.score(
                va, wearable, rng=300 + i, oracle_utterance=utterance
            )
        )
    return scores


def _attack_scores(world, generator, n=5):
    corpus, scenario, pipeline = world
    scores = []
    for i in range(n):
        attack = generator.generate(rng=400 + i)
        va, wearable = scenario.attack_recordings(
            attack, spl_db=75.0, rng=500 + i
        )
        scores.append(
            pipeline.score(
                va, wearable, rng=600 + i,
                oracle_utterance=attack.utterance,
            )
        )
    return scores


@pytest.mark.slow
class TestEndToEndSeparation:
    def test_replay_attack_detected(self, world):
        corpus, _, _ = world
        legit = _legit_scores(world)
        attacks = _attack_scores(
            world, ReplayAttack(corpus, corpus.speakers[0])
        )
        metrics = evaluate_scores(legit, attacks)
        assert metrics.auc >= 0.9

    def test_random_attack_detected(self, world):
        corpus, _, _ = world
        legit = _legit_scores(world)
        attacks = _attack_scores(
            world, RandomAttack(corpus, corpus.speakers[1])
        )
        assert evaluate_scores(legit, attacks).auc >= 0.9

    def test_synthesis_attack_detected(self, world):
        corpus, _, _ = world
        legit = _legit_scores(world)
        attacks = _attack_scores(
            world,
            VoiceSynthesisAttack(corpus, corpus.speakers[0], rng=7),
        )
        assert evaluate_scores(legit, attacks).auc >= 0.9

    def test_hidden_voice_attack_detected(self, world):
        corpus, _, _ = world
        legit = _legit_scores(world)
        attacks = _attack_scores(world, HiddenVoiceAttack(corpus))
        assert evaluate_scores(legit, attacks).auc >= 0.9


@pytest.mark.slow
def test_brick_wall_defeats_the_attack_itself(world):
    """Sanity: thru-brick sound is too weak to trigger anything."""
    import dataclasses

    from repro.acoustics.materials import BRICK_WALL
    from repro.va.device import GOOGLE_HOME, VoiceAssistantDevice

    from repro.acoustics.propagation import propagate

    corpus, _, _ = world
    replay = ReplayAttack(corpus, corpus.speakers[0])
    device = VoiceAssistantDevice(GOOGLE_HOME)

    def trigger_count(room):
        scenario = AttackScenario(room_config=room)
        triggers = 0
        for i in range(6):
            attack = replay.generate(rng=700 + i)
            interior = scenario.channel.transmit(
                attack.waveform, attack.sample_rate, 75.0, rng=800 + i
            )
            at_va = propagate(interior, attack.sample_rate, 2.0)
            triggers += device.try_trigger(
                at_va, attack.sample_rate, rng=900 + i
            ).triggered
        return triggers

    brick_room = dataclasses.replace(ROOM_A, barrier=BRICK_WALL)
    glass = trigger_count(ROOM_A)
    brick = trigger_count(brick_room)
    assert glass >= 4       # thru-glass attacks largely succeed...
    assert brick <= glass - 3  # ...while brick mostly defeats them.
