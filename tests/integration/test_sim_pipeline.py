"""Distributed-protocol integration: sim substrate feeding the defense."""

import numpy as np
import pytest

from repro.acoustics.propagation import propagate
from repro.acoustics.spl import scale_to_spl
from repro.core.pipeline import DefensePipeline
from repro.core.sync import synchronize_recordings
from repro.eval.rooms import ROOM_A
from repro.phonemes.commands import phonemize
from repro.phonemes.corpus import SyntheticCorpus
from repro.sim.protocol import run_synchronized_recording


@pytest.fixture(scope="module")
def sound_fields():
    """Acoustic fields at the two devices for one spoken command."""
    corpus = SyntheticCorpus(n_speakers=2, seed=9)
    utterance = corpus.utterance(
        phonemize("alexa play my favorite playlist"), rng=10
    )
    source = scale_to_spl(utterance.waveform, 70.0)
    tail = np.zeros(int(0.5 * 16_000))
    padded = np.concatenate([source, tail])
    at_va = propagate(padded, 16_000.0, 2.0)
    at_wearable = propagate(padded, 16_000.0, 1.0)
    return at_va, at_wearable


@pytest.mark.slow
def test_protocol_offset_is_corrected_by_sync(sound_fields):
    at_va, at_wearable = sound_fields
    session = run_synchronized_recording(
        at_va, at_wearable, 16_000.0, rng=1
    )
    # The protocol introduced a genuine offset...
    assert session.trigger_delay_s > 0.03
    # ...which the defense's cross-correlation sync recovers.
    va_aligned, wearable_aligned, estimated = synchronize_recordings(
        session.va_recording, session.wearable_recording, 16_000.0
    )
    assert estimated == pytest.approx(
        session.trigger_delay_s, abs=0.01
    )
    correlation = np.corrcoef(va_aligned, wearable_aligned)[0, 1]
    assert correlation > 0.8


@pytest.mark.slow
def test_protocol_recordings_feed_the_pipeline(sound_fields):
    at_va, at_wearable = sound_fields
    session = run_synchronized_recording(
        at_va, at_wearable, 16_000.0, rng=2
    )
    pipeline = DefensePipeline(segmenter=None)
    verdict = pipeline.analyze(
        session.va_recording, session.wearable_recording, rng=3
    )
    # Same legitimate source at both devices: strong correlation.
    assert verdict.score > 0.5
    assert verdict.sync_delay_s == pytest.approx(
        session.trigger_delay_s, abs=0.01
    )
