"""The red-team acceptance loop: optimizers win, hardening claws back.

Small-budget end-to-end version of ``bench_redteam_robustness.py``:
one optimizing attacker per detector arm, a shared EER-calibrated
threshold, and held-out evaluation.  The assertions carry slack — the
simulated world is noisy at these episode counts — but the directions
are the PR's acceptance criteria: a budgeted optimizing attacker must
strictly beat the static attack against the deterministic detector,
and the randomized defenses must measurably shrink that advantage.
"""

import numpy as np

from repro.core.hardening import HardeningConfig
from repro.redteam import (
    AttackSpace,
    RedTeamConfig,
    robustness_curve,
)

SPACE = AttackSpace(n_bands=4, n_slices=2)
BUDGET = 10


def _config():
    return RedTeamConfig(
        mode="random",
        budget=0,  # robustness_curve overrides per arm
        population=1,
        space=SPACE,
        n_probe_episodes=1,
        n_eval_episodes=12,
        n_calibration_reps=2,
        seed=3,
        executor="inline",
        n_workers=1,
        hardening=HardeningConfig(
            threshold_jitter=0.08, subset_fraction=0.5
        ),
    )


def test_optimizer_beats_static_and_hardening_reduces_advantage():
    curve = robustness_curve(_config(), budgets=[0, BUDGET])

    # (a) The optimizing attacker strictly beats the static attack
    # against the unhardened detector at a non-trivial budget.
    static = curve.success_rate("unhardened", 0)
    optimized = curve.success_rate("unhardened", BUDGET)
    assert optimized > static

    # (b) Randomized phoneme selection + threshold jitter measurably
    # reduce that advantage (slack: one eval episode of 12).
    unhardened_advantage = curve.advantage("unhardened")
    hardened_advantage = curve.advantage("hardened")
    assert unhardened_advantage > 0.0
    assert (
        hardened_advantage
        <= unhardened_advantage - 1.0 / 12.0 + 1e-9
    )

    # Curve bookkeeping: budget 0 is always present, both arms share
    # the budget grid, and every rate is a valid probability.
    assert curve.budgets[0] == 0
    for arm in ("unhardened", "hardened"):
        points = curve.arm_points(arm)
        assert [point.budget for point in points] == list(curve.budgets)
        for point in points:
            assert 0.0 <= point.detection_rate <= 1.0
            assert point.success_rate == 1.0 - point.detection_rate

    # The curve is reproducible: a JSON round-trip keeps the numbers.
    payload = curve.to_dict()
    assert payload["kind"] == "redteam-curve"
    assert payload["advantage_unhardened"] == unhardened_advantage
    assert len(payload["points"]) == 2 * len(curve.budgets)


def test_curve_is_deterministic_for_a_fixed_seed():
    a = robustness_curve(_config(), budgets=[0, BUDGET])
    b = robustness_curve(_config(), budgets=[0, BUDGET])
    assert a.threshold == b.threshold
    for pa, pb in zip(a.points, b.points):
        assert pa.arm == pb.arm and pa.budget == pb.budget
        assert pa.mean_score == pb.mean_score
        assert pa.detection_rate == pb.detection_rate
