"""Discrete-event substrate: clock, scheduler, network, protocol."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.sim.events import EventScheduler, SimClock
from repro.sim.network import Network, NetworkConfig
from repro.sim.protocol import run_synchronized_recording


class TestClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance_to(1.5)
        assert clock.now == 1.5

    def test_cannot_go_backwards(self):
        clock = SimClock(start_s=2.0)
        with pytest.raises(ProtocolError):
            clock.advance_to(1.0)


class TestScheduler:
    def test_fires_in_time_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_at(2.0, lambda: fired.append("b"))
        scheduler.schedule_at(1.0, lambda: fired.append("a"))
        scheduler.schedule_at(3.0, lambda: fired.append("c"))
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        scheduler = EventScheduler()
        fired = []
        for tag in "abc":
            scheduler.schedule_at(1.0, lambda t=tag: fired.append(t))
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_run_until_stops(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_at(1.0, lambda: fired.append(1))
        scheduler.schedule_at(5.0, lambda: fired.append(5))
        scheduler.run(until_s=2.0)
        assert fired == [1]
        assert scheduler.clock.now == 2.0
        assert scheduler.pending == 1

    def test_events_can_schedule_events(self):
        scheduler = EventScheduler()
        fired = []

        def first():
            fired.append("first")
            scheduler.schedule_in(1.0, lambda: fired.append("second"))

        scheduler.schedule_at(1.0, first)
        scheduler.run()
        assert fired == ["first", "second"]
        assert scheduler.clock.now == pytest.approx(2.0)

    def test_cannot_schedule_in_past(self):
        scheduler = EventScheduler()
        scheduler.clock.advance_to(5.0)
        with pytest.raises(ConfigurationError):
            scheduler.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            EventScheduler().schedule_in(-1.0, lambda: None)


class TestNetwork:
    def _make(self, **config):
        scheduler = EventScheduler()
        network = Network(scheduler, NetworkConfig(**config), rng=0)
        return scheduler, network

    def test_delivery_with_latency(self):
        scheduler, network = self._make(
            mean_delay_s=0.1, jitter_s=0.0, min_delay_s=0.1
        )
        received = []
        network.register("b", lambda m: received.append(m))
        network.send("a", "b", "hello")
        scheduler.run()
        assert len(received) == 1
        assert received[0].payload == "hello"
        assert scheduler.clock.now == pytest.approx(0.1)

    def test_unknown_recipient(self):
        _, network = self._make()
        with pytest.raises(ProtocolError):
            network.send("a", "ghost", "x")

    def test_duplicate_registration(self):
        _, network = self._make()
        network.register("b", lambda m: None)
        with pytest.raises(ConfigurationError):
            network.register("b", lambda m: None)

    def test_drops(self):
        scheduler, network = self._make(drop_probability=1.0)
        received = []
        network.register("b", lambda m: received.append(m))
        network.send("a", "b", "x")
        scheduler.run()
        assert received == []
        assert network.dropped == 1

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(drop_probability=2.0)


class TestProtocol:
    def test_session_produces_offset_recordings(self, rng):
        field = rng.standard_normal(32_000) * 0.01
        session = run_synchronized_recording(
            field, field.copy(), 16_000.0, rng=3
        )
        assert session.trigger_delay_s > 0.05
        # The wearable missed the first trigger_delay_s of sound.
        missing = int(round(session.trigger_delay_s * 16_000))
        assert session.wearable_recording.size == pytest.approx(
            session.va_recording.size - missing, abs=2
        )
        np.testing.assert_allclose(
            session.wearable_recording[:100],
            session.va_recording[missing : missing + 100],
        )

    def test_session_logs_protocol_steps(self, rng):
        field = rng.standard_normal(16_000) * 0.01
        session = run_synchronized_recording(field, field, 16_000.0,
                                             rng=4)
        assert any("trigger received" in line
                   for line in session.wearable_log)
        assert any("wake word" in line for line in session.va_log)

    def test_lost_trigger_raises(self, rng):
        field = rng.standard_normal(16_000) * 0.01
        with pytest.raises(ProtocolError):
            run_synchronized_recording(
                field, field, 16_000.0,
                network_config=NetworkConfig(drop_probability=1.0),
                rng=5,
            )

    def test_rejects_2d_fields(self):
        with pytest.raises(ProtocolError):
            run_synchronized_recording(
                np.zeros((2, 2)), np.zeros(4), 16_000.0
            )
