"""ScoreOracle: budget accounting, CRN determinism, eval guard."""

import numpy as np
import pytest

from repro.attacks import AttackScenario, ReplayAttack
from repro.core.detector import DetectorConfig
from repro.core.pipeline import DefenseConfig, DefensePipeline
from repro.core.segmentation import PhonemeSegmenter
from repro.errors import BudgetExceededError, ConfigurationError
from repro.eval.rooms import ROOM_A
from repro.phonemes import SyntheticCorpus
from repro.redteam.oracle import (
    EvaluationResult,
    OracleConfig,
    ScoreOracle,
)
from repro.redteam.space import AttackSpace

SPACE = AttackSpace(n_bands=3, n_slices=2)


def _oracle(budget=None, threshold=None, seed=0, n_probe_episodes=1):
    corpus = SyntheticCorpus(n_speakers=2, seed=1)
    attack = ReplayAttack(corpus, corpus.speakers[0]).generate_indexed(
        7, 0
    )
    pipeline = DefensePipeline(
        segmenter=PhonemeSegmenter(),
        config=DefenseConfig(
            detector=DetectorConfig(threshold=threshold)
        ),
    )
    return ScoreOracle(
        attack,
        AttackScenario(room_config=ROOM_A),
        pipeline,
        SPACE,
        OracleConfig(
            n_probe_episodes=n_probe_episodes,
            budget=budget,
            seed=seed,
        ),
    )


def test_budget_is_charged_and_enforced():
    oracle = _oracle(budget=2)
    assert oracle.queries_remaining == 2
    oracle.query(SPACE.identity())
    oracle.query(SPACE.identity())
    assert oracle.queries_used == 2
    assert oracle.queries_remaining == 0
    with pytest.raises(BudgetExceededError):
        oracle.query(SPACE.identity())
    # A failed query is not charged.
    assert oracle.queries_used == 2


def test_unlimited_oracle_reports_none_remaining():
    oracle = _oracle(budget=None)
    assert oracle.queries_remaining is None
    oracle.query(SPACE.identity())
    assert oracle.queries_used == 1


def test_probe_queries_use_common_random_numbers():
    """Same θ twice → bitwise the same score (fixed probe episodes)."""
    oracle = _oracle()
    theta = SPACE.random(np.random.default_rng(4))
    assert oracle.query(theta) == oracle.query(theta)
    # And a fresh oracle with the same seed agrees.
    assert _oracle().query(theta) == _oracle().query(theta)


def test_probe_seed_changes_with_oracle_seed():
    theta = SPACE.identity()
    assert _oracle(seed=0).query(theta) != _oracle(seed=1).query(theta)


def test_eval_episodes_are_disjoint_from_probes():
    oracle = _oracle(threshold=0.3)
    theta = SPACE.identity()
    probe = oracle.query(theta)
    evaluation = oracle.evaluate(theta, n_episodes=2)
    assert all(score != probe for score in evaluation.scores)


def test_evaluate_requires_calibrated_threshold():
    oracle = _oracle(threshold=None)
    with pytest.raises(ConfigurationError):
        oracle.evaluate(SPACE.identity(), n_episodes=1)


def test_evaluate_is_budget_free():
    oracle = _oracle(budget=1, threshold=0.3)
    oracle.evaluate(SPACE.identity(), n_episodes=2)
    assert oracle.queries_used == 0
    assert oracle.queries_remaining == 1


def test_evaluation_result_rates():
    result = EvaluationResult(
        scores=[0.1, 0.2, 0.5, 0.6],
        detected=[True, True, False, False],
    )
    assert result.n_episodes == 4
    assert result.detection_rate == 0.5
    assert result.success_rate == 0.5
    assert result.mean_score == pytest.approx(0.35)


def test_shaping_moves_the_probe_score():
    oracle = _oracle()
    theta = SPACE.upper_bounds.copy()
    assert oracle.query(theta) != oracle.query(SPACE.identity())


def test_oracle_config_validation():
    with pytest.raises(ConfigurationError):
        OracleConfig(n_probe_episodes=0)
    with pytest.raises(ConfigurationError):
        OracleConfig(budget=-1)
