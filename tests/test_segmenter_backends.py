"""Pluggable segmenter backends: protocol, bounds, parity, training.

Covers the contracts shared by the BLSTM and rate-distortion backends:
segments stay inside the recording, batched equals sequential, the RD
backend performs zero training runs (down through the serving spec),
and ``default_segmenter`` trains exactly once per recipe under
concurrent misses.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.scenario import AttackScenario
from repro.core.rate_distortion import (
    RateDistortionConfig,
    RateDistortionSegmenter,
)
from repro.core import segmentation as segmentation_module
from repro.core.segmentation import (
    PhonemeSegmenter,
    default_segmenter,
    training_run_count,
)
from repro.core.segmenter import (
    PersistentSegmenter,
    Segmenter,
    mask_to_segments,
)
from repro.errors import ConfigurationError
from repro.phonemes.commands import phonemize
from repro.serve.workers import PipelineSpec

RATE = 16_000.0


@pytest.fixture(scope="module")
def blstm_segmenter(corpus):
    segmenter = PhonemeSegmenter(rng=5)
    segmenter.train_on_phoneme_segments(
        corpus, n_per_phoneme=6, epochs=8, rng=6
    )
    return segmenter


@pytest.fixture(scope="module")
def rd_segmenter():
    return RateDistortionSegmenter()


@pytest.fixture(scope="module")
def utterance_waveforms(corpus):
    commands = ["play music", "open the door", "call mom"]
    return [
        corpus.utterance(phonemize(text), rng=30 + index).waveform
        for index, text in enumerate(commands)
    ]


class TestProtocolConformance:
    def test_both_backends_satisfy_segmenter(
        self, blstm_segmenter, rd_segmenter
    ):
        assert isinstance(blstm_segmenter, Segmenter)
        assert isinstance(rd_segmenter, Segmenter)

    def test_only_blstm_is_persistent(
        self, blstm_segmenter, rd_segmenter
    ):
        assert isinstance(blstm_segmenter, PersistentSegmenter)
        assert not isinstance(rd_segmenter, PersistentSegmenter)

    def test_rd_config_validation(self):
        with pytest.raises(ConfigurationError):
            RateDistortionConfig(target_segment_s=0.0)
        with pytest.raises(ConfigurationError):
            RateDistortionConfig(decision_threshold=1.5)
        with pytest.raises(ConfigurationError):
            RateDistortionSegmenter(sample_rate=0.0)


class TestMaskToSegments:
    """Regression pins for the shared mask → segment conversion."""

    def test_run_end_uses_last_positive_frame(self):
        # Frames 0-2 positive: the segment ends at the *last positive*
        # frame's window (2 * 10 ms + 25 ms), not one hop later at the
        # first negative frame's window — the old off-by-one.
        segments = mask_to_segments(
            np.array([True, True, True, False, False]),
            hop_s=0.010,
            frame_length_s=0.025,
            duration_s=1.0,
        )
        assert segments == [(0.0, 0.045)]

    def test_run_reaching_final_frame_clamps_to_duration(self):
        # 10 frames cover a 0.1 s recording (pad_final framing); an
        # all-positive mask must not extend past the audio.
        segments = mask_to_segments(
            np.ones(10, dtype=bool),
            hop_s=0.010,
            frame_length_s=0.025,
            duration_s=0.1,
        )
        assert segments == [(0.0, 0.1)]

    def test_interior_segment_boundaries(self):
        segments = mask_to_segments(
            np.array([False, False, True, True, False, False]),
            hop_s=0.010,
            frame_length_s=0.025,
            duration_s=1.0,
        )
        assert segments == [(0.02, 0.055)]

    def test_gap_merging_and_min_length(self):
        mask = np.zeros(13, dtype=bool)
        mask[[0, 1, 3, 4, 12]] = True
        segments = mask_to_segments(
            mask,
            hop_s=0.010,
            frame_length_s=0.025,
            duration_s=1.0,
            merge_gap_s=0.02,
            min_segment_s=0.03,
        )
        # Runs [0,1] and [3,4] merge (the window overlap closes the
        # 1-frame gap); the lone frame at 12 starts 55 ms later, stays
        # separate, and its 25 ms run is dropped by min_segment_s.
        assert segments == [(0.0, 0.065)]

    def test_empty_mask_and_zero_duration(self):
        assert mask_to_segments(
            np.zeros(0, dtype=bool), 0.01, 0.025, 1.0
        ) == []
        assert mask_to_segments(
            np.ones(5, dtype=bool), 0.01, 0.025, 0.0
        ) == []

    def test_plain_python_floats(self):
        segments = mask_to_segments(
            np.array([True, True]), 0.01, 0.025, 1.0
        )
        for start, end in segments:
            assert type(start) is float and type(end) is float


class TestSegmentBounds:
    """Both backends emit segments strictly within [0, duration]."""

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_samples=st.integers(min_value=400, max_value=12_000),
    )
    @settings(max_examples=12, deadline=None)
    def test_rd_segments_within_recording(self, seed, n_samples):
        rng = np.random.default_rng(seed)
        audio = rng.normal(size=n_samples)
        duration = n_samples / RATE
        segmenter = RateDistortionSegmenter()
        for start, end in segmenter.segments(audio):
            assert 0.0 <= start < end <= duration

    def test_blstm_segments_within_recording(
        self, blstm_segmenter, utterance_waveforms
    ):
        for waveform in utterance_waveforms:
            duration = waveform.size / RATE
            for start, end in blstm_segmenter.segments(waveform):
                assert 0.0 <= start < end <= duration

    def test_blstm_full_positive_mask_clamps(self, blstm_segmenter):
        # Force an all-positive mask through the real conversion path:
        # whatever the probabilities, a run reaching the final analysis
        # frame (which pad_final zero-pads past the audio) must clamp.
        duration = 0.1
        segments = blstm_segmenter._mask_to_segments(
            np.ones(10, dtype=bool), duration
        )
        assert segments and segments[-1][1] <= duration


class TestRateDistortionBehaviour:
    def test_batched_matches_sequential(
        self, rd_segmenter, utterance_waveforms
    ):
        batched_probs = rd_segmenter.frame_probabilities_batch(
            utterance_waveforms
        )
        batched_segments = rd_segmenter.segments_batch(
            utterance_waveforms
        )
        for waveform, probs, segments in zip(
            utterance_waveforms, batched_probs, batched_segments
        ):
            assert (
                probs == rd_segmenter.frame_probabilities(waveform)
            ).all()
            assert segments == rd_segmenter.segments(waveform)

    def test_boundaries_partition_frames(
        self, rd_segmenter, utterance_waveforms
    ):
        features = rd_segmenter.features(utterance_waveforms[0])
        bounds = rd_segmenter.boundaries(features)
        assert bounds[0] == 0
        assert bounds[-1] == features.shape[0]
        assert (np.diff(bounds) > 0).all()

    def test_vowel_sensitive_fricative_not(self, corpus):
        segmenter = RateDistortionSegmenter()
        vowel = corpus.utterance(["ae"], rng=40).waveform
        fricative = corpus.utterance(["s"], rng=41).waveform
        assert segmenter.classify_segment(vowel)
        assert not segmenter.classify_segment(fricative)

    def test_finds_segments_in_utterance(
        self, rd_segmenter, utterance_waveforms
    ):
        assert rd_segmenter.segments(utterance_waveforms[0])

    def test_construction_and_inference_train_nothing(
        self, utterance_waveforms
    ):
        before = training_run_count()
        segmenter = RateDistortionSegmenter()
        segmenter.segments(utterance_waveforms[0])
        segmenter.frame_probabilities_batch(utterance_waveforms)
        assert training_run_count() == before


class TestServingSpec:
    def test_rd_spec_builds_training_free_pipeline(
        self, room_config, corpus
    ):
        before = training_run_count()
        spec = PipelineSpec(segmenter_backend="rd")
        pipeline = spec.build_pipeline(RATE, wearer_moving=False)
        assert isinstance(pipeline.segmenter, RateDistortionSegmenter)
        scenario = AttackScenario(room_config=room_config)
        utterance = corpus.utterance(
            phonemize("play my favorite playlist"), rng=50
        )
        va, wearable = scenario.legitimate_recordings(
            utterance, spl_db=70.0, rng=51
        )
        verdict = pipeline.analyze(va, wearable, rng=52)
        assert verdict.analyzed_duration_s > 0
        assert training_run_count() == before

    def test_rd_fingerprint_ignores_training_recipe(self):
        small = PipelineSpec(
            segmenter_backend="rd", n_speakers=2, epochs=3
        )
        large = PipelineSpec(
            segmenter_backend="rd", n_speakers=8, epochs=12
        )
        assert small.fingerprint == large.fingerprint
        assert (
            PipelineSpec(segmenter_backend="rd").fingerprint
            != PipelineSpec().fingerprint
        )

    def test_blstm_fingerprint_still_recipe_sensitive(self):
        assert (
            PipelineSpec(n_speakers=2).fingerprint
            != PipelineSpec(n_speakers=8).fingerprint
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineSpec(segmenter_backend="oracle")


class TestDefaultSegmenterRace:
    def test_concurrent_misses_train_once(self, monkeypatch):
        recipe = dict(
            seed=987_654, n_speakers=1, n_per_phoneme=1, epochs=1
        )
        key = (987_654, 1, 1, 1)
        n_threads = 8
        start_barrier = threading.Barrier(n_threads)

        class FakeSegmenter:
            pass

        def fake_train(seed=None, n_speakers=8, n_per_phoneme=12,
                       epochs=12):
            # Stand-in for the BLSTM recipe: bump the counter like the
            # real training does, and linger long enough that every
            # thread is inside default_segmenter before it finishes.
            segmentation_module._note_training_run()
            threading.Event().wait(0.05)
            return FakeSegmenter()

        monkeypatch.setattr(
            segmentation_module, "train_default_segmenter", fake_train
        )
        before = training_run_count()
        results = [None] * n_threads

        def worker(index):
            start_barrier.wait()
            results[index] = default_segmenter(**recipe)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(n_threads)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert training_run_count() == before + 1
            assert all(result is results[0] for result in results)
            assert isinstance(results[0], FakeSegmenter)
        finally:
            segmentation_module._WARM_SEGMENTERS.pop(key, None)
            segmentation_module._RECIPE_LOCKS.pop(key, None)

    def test_memo_returns_same_instance(self, monkeypatch):
        key = (987_655, 1, 1, 1)
        calls = []

        def fake_train(seed=None, n_speakers=8, n_per_phoneme=12,
                       epochs=12):
            calls.append(seed)
            return object()

        monkeypatch.setattr(
            segmentation_module, "train_default_segmenter", fake_train
        )
        try:
            first = default_segmenter(
                seed=987_655, n_speakers=1, n_per_phoneme=1, epochs=1
            )
            second = default_segmenter(
                seed=987_655, n_speakers=1, n_per_phoneme=1, epochs=1
            )
            assert first is second
            assert len(calls) == 1
        finally:
            segmentation_module._WARM_SEGMENTERS.pop(key, None)
            segmentation_module._RECIPE_LOCKS.pop(key, None)
