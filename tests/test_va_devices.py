"""VA device models and wake-word detection."""

import numpy as np
import pytest

from repro.acoustics.spl import scale_to_spl
from repro.dsp.generators import tone, white_noise
from repro.va.device import (
    ALEXA_ECHO,
    GOOGLE_HOME,
    IPHONE,
    MACBOOK_PRO,
    VA_DEVICES,
    VoiceAssistantDevice,
)
from repro.va.wakeword import WakeWordDetector

RATE = 16_000.0


def _speechlike(spl_db, rng=0):
    signal = tone(200.0, 1.0, RATE) + 0.5 * tone(800.0, 1.0, RATE)
    return scale_to_spl(signal, spl_db)


class TestWakeWord:
    def test_loud_speech_triggers(self):
        detector = WakeWordDetector()
        result = detector.evaluate(_speechlike(75.0), RATE, rng=1)
        assert result.probability > 0.95
        assert result.triggered

    def test_very_quiet_sound_does_not_trigger(self):
        detector = WakeWordDetector()
        result = detector.evaluate(_speechlike(20.0), RATE, rng=1)
        assert result.probability < 0.05

    def test_probability_monotonic_in_level(self):
        detector = WakeWordDetector()
        probs = [
            detector.evaluate(_speechlike(level), RATE, rng=1).probability
            for level in (30.0, 45.0, 60.0, 75.0)
        ]
        assert probs == sorted(probs)

    def test_stochastic_at_threshold(self):
        detector = WakeWordDetector(threshold_snr_db=6.0)
        # A level near threshold should trigger sometimes, not always.
        borderline = _speechlike(detector.noise_floor_db + 6.0)
        outcomes = [
            detector.evaluate(borderline, RATE, rng=i).triggered
            for i in range(40)
        ]
        assert 5 < sum(outcomes) < 35


class TestDevices:
    def test_registry(self):
        assert set(VA_DEVICES) == {
            "Google Home", "Alexa Echo", "MacBook Pro", "iPhone"
        }

    def test_google_home_most_sensitive(self):
        thresholds = {
            spec.name: spec.threshold_snr_db
            for spec in VA_DEVICES.values()
        }
        assert thresholds["Google Home"] == min(thresholds.values())
        assert thresholds["iPhone"] == max(thresholds.values())

    def test_siri_devices_gate_on_voice(self):
        for spec in (MACBOOK_PRO, IPHONE):
            assert spec.has_voice_recognition
        for spec in (GOOGLE_HOME, ALEXA_ECHO):
            assert not spec.has_voice_recognition

    def test_trigger_succeeds_on_loud_sound(self):
        device = VoiceAssistantDevice(GOOGLE_HOME)
        result = device.try_trigger(_speechlike(75.0), RATE, rng=2)
        assert result.triggered

    def test_voice_gate_blocks_mismatched_voice(self):
        device = VoiceAssistantDevice(IPHONE)
        result = device.try_trigger(
            _speechlike(85.0), RATE, voice_matches_user=False, rng=3
        )
        assert not result.triggered
        assert result.probability == 0.0

    def test_voice_gate_ignored_on_non_siri(self):
        device = VoiceAssistantDevice(GOOGLE_HOME)
        result = device.try_trigger(
            _speechlike(80.0), RATE, voice_matches_user=False, rng=4
        )
        assert result.triggered

    def test_sensitivity_ordering_in_practice(self):
        # At a marginal level, Google Home should trigger more often
        # than the iPhone.
        level = _speechlike(48.0)
        google = sum(
            VoiceAssistantDevice(GOOGLE_HOME)
            .try_trigger(level, RATE, rng=i)
            .triggered
            for i in range(30)
        )
        iphone = sum(
            VoiceAssistantDevice(IPHONE)
            .try_trigger(level, RATE, rng=i)
            .triggered
            for i in range(30)
        )
        assert google > iphone
