"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.acoustics.room import RoomConfig
from repro.acoustics.materials import GLASS_WINDOW
from repro.phonemes.corpus import SyntheticCorpus
from repro.phonemes.speaker import SpeakerProfile, generate_speakers
from repro.phonemes.synthesis import PhonemeSynthesizer

#: Audio sampling rate used across tests.
AUDIO_RATE = 16_000.0


@pytest.fixture(scope="session")
def speakers():
    """A small, deterministic speaker pool."""
    return generate_speakers(4, rng=101)


@pytest.fixture(scope="session")
def male_speaker(speakers):
    """One male speaker."""
    return next(s for s in speakers if s.gender == "male")


@pytest.fixture(scope="session")
def female_speaker(speakers):
    """One female speaker."""
    return next(s for s in speakers if s.gender == "female")


@pytest.fixture(scope="session")
def synthesizer():
    """Shared phoneme synthesizer."""
    return PhonemeSynthesizer()


@pytest.fixture(scope="session")
def corpus(speakers):
    """A small synthetic corpus."""
    return SyntheticCorpus(speakers=speakers, seed=202)


@pytest.fixture(scope="session")
def room_config():
    """A default glass-window room."""
    return RoomConfig(
        name="Test Room", width_m=6.0, length_m=5.0, barrier=GLASS_WINDOW
    )


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(31337)
