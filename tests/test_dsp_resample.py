"""Aliasing decimation and clean resampling."""

import numpy as np
import pytest

from repro.dsp.generators import tone
from repro.dsp.resample import (
    alias_decimate,
    folded_frequency,
    resample_poly_safe,
)
from repro.dsp.spectrum import fft_magnitude
from repro.errors import ConfigurationError, SignalError


def test_alias_decimate_length():
    signal = np.arange(800, dtype=float)
    out = alias_decimate(signal, 16_000.0, 200.0)
    assert out.size == 10
    np.testing.assert_array_equal(out, signal[::80])


def test_alias_decimate_rejects_non_integer_ratio():
    with pytest.raises(ConfigurationError):
        alias_decimate(np.ones(100), 1000.0, 300.0)


def test_alias_decimate_rejects_upsampling():
    with pytest.raises(ConfigurationError):
        alias_decimate(np.ones(100), 100.0, 200.0)


def test_aliasing_folds_high_frequency():
    # 1250 Hz sampled at 200 Hz folds to |1250 - 6*200| = 50 Hz.
    signal = tone(1250.0, 2.0, 16_000.0)
    vibration = alias_decimate(signal, 16_000.0, 200.0)
    freqs, mags = fft_magnitude(vibration, 200.0)
    assert freqs[np.argmax(mags)] == pytest.approx(50.0, abs=1.0)


@pytest.mark.parametrize(
    "frequency,expected",
    [(50.0, 50.0), (150.0, 50.0), (250.0, 50.0), (1250.0, 50.0),
     (100.0, 100.0), (200.0, 0.0), (330.0, 70.0)],
)
def test_folded_frequency(frequency, expected):
    assert folded_frequency(frequency, 200.0) == pytest.approx(expected)


def test_resample_poly_preserves_tone():
    signal = tone(50.0, 1.0, 1000.0)
    out = resample_poly_safe(signal, 1000.0, 500.0)
    freqs, mags = fft_magnitude(out, 500.0)
    assert freqs[np.argmax(mags)] == pytest.approx(50.0, abs=2.0)
    assert out.size == pytest.approx(signal.size // 2, abs=2)


def test_resample_rejects_too_short():
    with pytest.raises(SignalError):
        resample_poly_safe(np.ones(1), 100.0, 50.0)


def test_antialiased_resampling_suppresses_folding():
    # 180 Hz at input rate 1000 -> output 200 Hz: must be removed, not
    # folded to 20 Hz.
    signal = tone(180.0, 2.0, 1000.0)
    clean = resample_poly_safe(signal, 1000.0, 200.0)
    _, mags = fft_magnitude(clean, 200.0)
    aliased = alias_decimate(signal, 1000.0, 200.0)
    _, mags_aliased = fft_magnitude(aliased, 200.0)
    assert mags.max() < 0.2 * mags_aliased.max()
