"""Speaker verification substrate."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ModelError
from repro.phonemes.commands import phonemize
from repro.va.verification import (
    SpeakerVerifier,
    VerifierConfig,
    VerificationResult,
)


@pytest.fixture(scope="module")
def enrolled(corpus):
    verifier = SpeakerVerifier()
    user = corpus.speakers[0]
    enrollment = [
        corpus.utterance(
            phonemize("alexa play my favorite playlist"),
            speaker=user, rng=700 + i,
        ).waveform
        for i in range(4)
    ]
    verifier.enroll(enrollment)
    return verifier, user


class TestFeatures:
    def test_feature_vector_shape(self, corpus):
        verifier = SpeakerVerifier()
        utterance = corpus.utterance(phonemize("play music"), rng=1)
        features = verifier.features(utterance.waveform)
        assert features.shape == (34,)  # 32 mel + 2 F0 stats

    def test_silent_input_rejected(self):
        verifier = SpeakerVerifier()
        with pytest.raises(ModelError):
            verifier.features(np.zeros(16_000))

    def test_f0_statistic_tracks_pitch(self, corpus):
        verifier = SpeakerVerifier()
        male = next(
            s for s in corpus.speakers if s.gender == "male"
        )
        female = next(
            s for s in corpus.speakers if s.gender == "female"
        )
        sequence = phonemize("good morning")
        male_features = verifier.features(
            corpus.utterance(sequence, speaker=male, rng=2).waveform
        )
        female_features = verifier.features(
            corpus.utterance(sequence, speaker=female, rng=3).waveform
        )
        # Feature index -2 is the scaled F0 median.
        assert female_features[-2] > male_features[-2]


class TestVerification:
    def test_unenrolled_raises(self, corpus):
        verifier = SpeakerVerifier()
        utterance = corpus.utterance(phonemize("play music"), rng=4)
        with pytest.raises(ModelError):
            verifier.score(utterance.waveform)

    def test_same_speaker_accepted(self, enrolled, corpus):
        verifier, user = enrolled
        probe = corpus.utterance(
            phonemize("ok google turn on the lights"),
            speaker=user, rng=5,
        )
        result = verifier.verify(probe.waveform)
        assert isinstance(result, VerificationResult)
        assert result.accepted
        assert result.score > 0.8

    def test_different_speaker_scores_lower(self, enrolled, corpus):
        verifier, user = enrolled
        impostors = [
            s for s in corpus.speakers
            if s.gender != user.gender
        ]
        probe = corpus.utterance(
            phonemize("ok google turn on the lights"),
            speaker=impostors[0], rng=6,
        )
        genuine = corpus.utterance(
            phonemize("ok google turn on the lights"),
            speaker=user, rng=7,
        )
        assert verifier.score(probe.waveform) < verifier.score(
            genuine.waveform
        )

    def test_replayed_voice_fools_verification(self, enrolled, corpus):
        """The paper's premise: voice auth does not stop replay."""
        from repro.attacks.replay import ReplayAttack

        verifier, user = enrolled
        attack = ReplayAttack(corpus, user).generate(
            command="alexa play my favorite playlist", rng=8
        )
        assert verifier.verify(attack.waveform).accepted

    def test_cloned_voice_fools_verification(self, enrolled, corpus):
        """...and neither does speaker-adaptive synthesis."""
        from repro.attacks.synthesis import VoiceSynthesisAttack

        verifier, user = enrolled
        attack = VoiceSynthesisAttack(corpus, user, rng=9).generate(
            command="alexa play my favorite playlist", rng=10
        )
        assert verifier.score(attack.waveform) > 0.7

    def test_enroll_requires_data(self):
        with pytest.raises(ModelError):
            SpeakerVerifier().enroll([])


def test_invalid_config():
    with pytest.raises(ConfigurationError):
        VerifierConfig(n_mel=0)
    with pytest.raises(ConfigurationError):
        VerifierConfig(f0_range_hz=(400.0, 60.0))
