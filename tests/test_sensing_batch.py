"""Batched cross-domain sensing: bitwise parity with the sequential
replay path, batch-composition invariance, and error isolation when
the sensing hoist runs inside ``analyze_batch``."""

import numpy as np
import pytest

from repro.acoustics.loudspeaker import WEARABLE_SPEAKER, Loudspeaker
from repro.core.pipeline import (
    BatchAnalysisItem,
    DefenseConfig,
    DefensePipeline,
)
from repro.dsp.filters import butter_lowpass, butter_lowpass_batch
from repro.dsp.resample import alias_decimate, alias_decimate_batch
from repro.sensing.accelerometer import Accelerometer, AccelerometerSpec
from repro.sensing.conduction import ConductionPath
from repro.sensing.cross_domain import CrossDomainSensor

AUDIO_RATE = 16_000.0


def make_audios(n, base=16_000):
    """Ragged-length recordings spanning several length buckets."""
    rng = np.random.default_rng(777)
    return [
        rng.normal(0.0, 0.1, base + 800 * (index % 4))
        for index in range(n)
    ]


class TestDspBatchParity:
    """The vectorized kernels under ``convert_batch``."""

    def test_butter_lowpass_batch_bitwise(self):
        stack = np.random.default_rng(1).normal(size=(4, 4_000))
        batched = butter_lowpass_batch(stack, AUDIO_RATE, 100.0)
        for row in range(stack.shape[0]):
            single = butter_lowpass(stack[row], AUDIO_RATE, 100.0)
            np.testing.assert_array_equal(batched[row], single)

    def test_alias_decimate_batch_bitwise(self):
        stack = np.random.default_rng(2).normal(size=(3, 4_000))
        batched = alias_decimate_batch(stack, AUDIO_RATE, 200.0)
        assert batched.flags["C_CONTIGUOUS"]
        for row in range(stack.shape[0]):
            single = alias_decimate(stack[row], AUDIO_RATE, 200.0)
            np.testing.assert_array_equal(batched[row], single)

    def test_loudspeaker_play_batch_bitwise(self):
        speaker = Loudspeaker(WEARABLE_SPEAKER)
        stack = np.random.default_rng(3).normal(0.0, 0.3, (4, 4_000))
        batched = speaker.play_batch(stack, AUDIO_RATE)
        for row in range(stack.shape[0]):
            single = speaker.play(stack[row], AUDIO_RATE)
            np.testing.assert_array_equal(batched[row], single)

    def test_conduction_apply_batch_bitwise(self):
        path = ConductionPath()
        stack = np.random.default_rng(4).normal(size=(3, 4_000))
        rngs = [np.random.default_rng(40 + row) for row in range(3)]
        batched = path.apply_batch(stack, AUDIO_RATE, rngs=rngs)
        for row in range(stack.shape[0]):
            single = path.apply(
                stack[row],
                AUDIO_RATE,
                rng=np.random.default_rng(40 + row),
            )
            np.testing.assert_array_equal(batched[row], single)

    def test_accelerometer_sense_batch_bitwise(self):
        accelerometer = Accelerometer(AccelerometerSpec())
        stack = np.random.default_rng(5).normal(size=(3, 8_000))
        drives = np.random.default_rng(6).normal(size=(3, 8_000))
        rngs = [np.random.default_rng(50 + row) for row in range(3)]
        batched = accelerometer.sense_batch(
            stack, AUDIO_RATE, drive_audios=drives, rngs=rngs
        )
        for row in range(stack.shape[0]):
            single = accelerometer.sense(
                stack[row],
                AUDIO_RATE,
                drive_audio=drives[row],
                rng=np.random.default_rng(50 + row),
            )
            np.testing.assert_array_equal(batched[row], single)


class TestConvertBatchParity:
    @pytest.fixture(scope="class")
    def sensor(self):
        return CrossDomainSensor()

    def test_matches_sequential_bitwise(self, sensor):
        audios = make_audios(6)
        seeds = [100 + index for index in range(len(audios))]
        batched = sensor.convert_batch(audios, AUDIO_RATE, rngs=seeds)
        assert len(batched) == len(audios)
        for audio, seed, vibration in zip(audios, seeds, batched):
            single = sensor.convert(audio, AUDIO_RATE, rng=seed)
            np.testing.assert_array_equal(vibration, single)

    def test_body_motion_path_bitwise(self, sensor):
        audios = make_audios(4)
        seeds = [200 + index for index in range(len(audios))]
        batched = sensor.convert_batch(
            audios, AUDIO_RATE, rngs=seeds, include_body_motion=True
        )
        for audio, seed, vibration in zip(audios, seeds, batched):
            single = sensor.convert(
                audio, AUDIO_RATE, rng=seed, include_body_motion=True
            )
            np.testing.assert_array_equal(vibration, single)

    def test_batch_composition_invariance(self, sensor):
        # An item's vibration must not depend on its batch-mates: the
        # determinism contract behind serving micro-batches.
        audios = make_audios(6)
        seeds = [300 + index for index in range(len(audios))]
        full = sensor.convert_batch(audios, AUDIO_RATE, rngs=seeds)
        pairs = [
            sensor.convert_batch(
                audios[start : start + 2],
                AUDIO_RATE,
                rngs=seeds[start : start + 2],
            )
            for start in range(0, len(audios), 2)
        ]
        flattened = [item for pair in pairs for item in pair]
        for together, alone in zip(full, flattened):
            np.testing.assert_array_equal(together, alone)

    def test_batch_of_one_matches_single(self, sensor):
        audio = make_audios(1)[0]
        batched = sensor.convert_batch([audio], AUDIO_RATE, rngs=[9])
        single = sensor.convert(audio, AUDIO_RATE, rng=9)
        np.testing.assert_array_equal(batched[0], single)

    def test_empty_batch(self, sensor):
        assert sensor.convert_batch([], AUDIO_RATE) == []

    def test_rng_count_mismatch_rejected(self, sensor):
        audios = make_audios(2)
        with pytest.raises(ValueError):
            sensor.convert_batch(audios, AUDIO_RATE, rngs=[1])


class TestSenseHoistInAnalyzeBatch:
    """The pipeline-level hoist that feeds ``convert_batch``."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        return DefensePipeline(
            config=DefenseConfig(audio_rate=AUDIO_RATE)
        )

    def _items(self, seeds, n_samples=16_000):
        items = []
        for seed in seeds:
            rng = np.random.default_rng(seed)
            va = rng.normal(0.0, 0.1, n_samples)
            wearable = 0.8 * va + rng.normal(0.0, 0.02, n_samples)
            items.append(
                BatchAnalysisItem(
                    va_audio=va, wearable_audio=wearable, rng=seed
                )
            )
        return items

    def test_hoisted_sensing_matches_sequential(self, pipeline):
        items = self._items((61, 62, 63))
        outcomes = pipeline.analyze_batch(items)
        assert all(outcome.ok for outcome in outcomes)
        for item, outcome in zip(items, outcomes):
            expected = pipeline.analyze(
                item.va_audio, item.wearable_audio, rng=item.rng
            )
            assert outcome.verdict == expected
            assert "sense" in outcome.timings

    def test_poisoned_item_isolated(self, pipeline):
        items = self._items((71, 72))
        poisoned = BatchAnalysisItem(
            va_audio=np.zeros((2, 100)),  # 2-D: rejected by ensure_1d
            wearable_audio=np.zeros(16_000),
            rng=73,
        )
        mixed = [items[0], poisoned, items[1]]
        outcomes = pipeline.analyze_batch(mixed)
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok and outcomes[1].error is not None
        for item, outcome in ((items[0], outcomes[0]),
                              (items[1], outcomes[2])):
            expected = pipeline.analyze(
                item.va_audio, item.wearable_audio, rng=item.rng
            )
            assert outcome.verdict == expected
