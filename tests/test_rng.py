"""Deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import (
    DEFAULT_SEED,
    as_generator,
    child_rng,
    derive_seed,
    spawn_rngs,
)


def test_as_generator_from_int_is_deterministic():
    a = as_generator(42).standard_normal(8)
    b = as_generator(42).standard_normal(8)
    np.testing.assert_array_equal(a, b)


def test_as_generator_passthrough():
    generator = np.random.default_rng(0)
    assert as_generator(generator) is generator


def test_as_generator_none_uses_default_seed():
    a = as_generator(None).standard_normal(4)
    b = as_generator(DEFAULT_SEED).standard_normal(4)
    np.testing.assert_array_equal(a, b)


def test_child_rng_differs_by_label():
    parent_a = as_generator(7)
    parent_b = as_generator(7)
    child_x = child_rng(parent_a, "x")
    child_y = child_rng(parent_b, "y")
    assert not np.allclose(
        child_x.standard_normal(8), child_y.standard_normal(8)
    )


def test_child_rng_deterministic_for_same_label():
    a = child_rng(as_generator(7), "x").standard_normal(8)
    b = child_rng(as_generator(7), "x").standard_normal(8)
    np.testing.assert_array_equal(a, b)


def test_spawn_rngs_count_and_independence():
    streams = spawn_rngs(3, 5)
    assert len(streams) == 5
    draws = [stream.standard_normal(16) for stream in streams]
    for i in range(5):
        for j in range(i + 1, 5):
            assert not np.allclose(draws[i], draws[j])


def test_spawn_rngs_rejects_negative_count():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_spawn_rngs_zero_count():
    assert spawn_rngs(0, 0) == []


def test_derive_seed_stable():
    assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)


def test_derive_seed_varies_with_labels():
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a", 1) != derive_seed(1, "a", 2)
