"""Scenario-registry round-trip tests.

Every registered scenario must build end-to-end from its name alone:
resolve, fingerprint deterministically, construct its attack scenario
and defense pipeline, and produce one verdict.  That is the registry's
whole contract — a scenario that needs hand-holding outside the spec is
not a registry entry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.acoustics.materials import (
    GLASS_WINDOW,
    META_NOTCH_HF,
    META_NOTCH_SPEECH,
    MetamaterialBarrier,
    get_material,
    list_materials,
)
from repro.attacks import ReplayAttack
from repro.attacks.base import AttackKind
from repro.errors import ConfigurationError
from repro.eval.campaign import CampaignConfig
from repro.eval.rooms import ROOM_A
from repro.phonemes import SyntheticCorpus
from repro.scenarios import (
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.serve import PipelineSpec

EXPECTED_SCENARIOS = {
    "baseline-glass",
    "baseline-wood",
    "baseline-brick",
    "ultrasound-solid",
    "metamaterial-barrier",
    "metamaterial-hf-control",
}


class TestRegistry:
    def test_builtin_packs_registered(self):
        assert EXPECTED_SCENARIOS.issubset(set(list_scenarios()))

    def test_unknown_name_lists_known(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_scenario("no-such-scenario")
        message = str(excinfo.value)
        assert "no-such-scenario" in message
        assert "ultrasound-solid" in message

    def test_reregistering_identical_spec_is_noop(self):
        spec = get_scenario("baseline-glass")
        assert register_scenario(spec) is spec

    def test_conflicting_name_rejected(self):
        taken = get_scenario("baseline-glass")
        conflicting = ScenarioSpec(
            name=taken.name,
            description="different condition under a taken name",
            material="brick_wall",
        )
        with pytest.raises(ConfigurationError):
            register_scenario(conflicting)

    def test_invalid_attack_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x", description="d", attack="laser")

    def test_invalid_material_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x", description="d", material="cardboard")


class TestFingerprints:
    def test_deterministic_and_distinct(self):
        prints = {}
        for name in list_scenarios():
            spec = get_scenario(name)
            assert spec.fingerprint == spec.fingerprint
            assert spec.fingerprint == get_scenario(name).fingerprint
            prints[name] = spec.fingerprint
        assert len(set(prints.values())) == len(prints)

    def test_fingerprint_tracks_parameters(self):
        base = get_scenario("baseline-glass")
        tweaked = ScenarioSpec(
            name="tweaked",
            description=base.description,
            attack=base.attack,
            material=base.material,
            attack_spl_db=base.attack_spl_db + 5.0,
        )
        assert tweaked.fingerprint != base.fingerprint


class TestEveryScenarioRuns:
    """Each registry entry produces a verdict from its name alone."""

    @pytest.fixture(scope="class")
    def attack_sound(self):
        corpus = SyntheticCorpus(n_speakers=2, seed=0)
        return ReplayAttack(corpus, corpus.speakers[0]).generate_indexed(
            3, 0
        )

    @pytest.mark.parametrize("name", sorted(EXPECTED_SCENARIOS))
    def test_one_verdict(self, name, attack_sound):
        spec = get_scenario(name)
        scenario = spec.build_attack_scenario(ROOM_A)
        va, wearable = scenario.attack_recordings(
            attack_sound, spl_db=spec.attack_spl_db, rng=11
        )
        pipeline = spec.build_pipeline(segmenter=None)
        verdict = pipeline.analyze(
            va, wearable, rng=5, skip_segmentation=True
        )
        assert np.isfinite(verdict.score)
        assert -1.0 <= verdict.score <= 1.0


class TestCampaignAndServingWiring:
    def test_campaign_config_validates_scenario(self):
        CampaignConfig(scenario="baseline-glass")
        with pytest.raises(ConfigurationError):
            CampaignConfig(scenario="no-such-scenario")

    def test_pipeline_spec_validates_scenario(self):
        with pytest.raises(ConfigurationError):
            PipelineSpec(scenario="no-such-scenario")

    def test_pipeline_spec_fingerprint_includes_scenario(self):
        plain = PipelineSpec(segmenter_backend="rd")
        scoped = PipelineSpec(
            segmenter_backend="rd", scenario="ultrasound-solid"
        )
        assert plain.fingerprint != scoped.fingerprint

    def test_pipeline_spec_builds_scenario_sensor(self):
        spec = PipelineSpec(
            segmenter_backend="rd", scenario="metamaterial-barrier"
        )
        pipeline = spec.build_pipeline(
            audio_rate=16_000.0, wearer_moving=False
        )
        assert pipeline.sensor is not None


class TestMetamaterials:
    def test_notch_deepens_loss_at_notch(self):
        freqs = np.array([125.0, 250.0, 500.0, 2500.0])
        host = GLASS_WINDOW.transmission_loss_db(freqs)
        meta = META_NOTCH_SPEECH.transmission_loss_db(freqs)
        extra = meta - host
        assert extra[1] > 25.0  # deep at the 250 Hz notch center
        assert extra[1] > extra[0]
        assert extra[1] > extra[3]

    def test_hf_control_notch_out_of_band(self):
        freqs = np.array([250.0, 2500.0])
        speech = META_NOTCH_SPEECH.transmission_loss_db(freqs)
        control = META_NOTCH_HF.transmission_loss_db(freqs)
        assert speech[0] > control[0]  # speech notch bites at 250 Hz
        assert control[1] > speech[1]  # control notch bites at 2.5 kHz

    def test_registry_keys(self):
        names = list_materials()
        assert "meta_speech_notch" in names
        assert "meta_hf_notch" in names
        assert isinstance(
            get_material("meta_speech_notch"), MetamaterialBarrier
        )
