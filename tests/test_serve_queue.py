"""Bounded request queue: backpressure policies and accounting."""

import threading
import time

import pytest

from repro.errors import ConfigurationError, ServiceOverloadError
from repro.serve.queue import BackpressurePolicy, BoundedRequestQueue


class TestValidation:
    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            BoundedRequestQueue(capacity=0)

    def test_negative_block_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            BoundedRequestQueue(capacity=1, block_timeout_s=-0.1)


class TestFifo:
    def test_entries_pop_in_arrival_order(self):
        queue = BoundedRequestQueue(capacity=8)
        for value in range(5):
            queue.put(value)
        assert [queue.get(timeout_s=0) for _ in range(5)] == list(range(5))

    def test_get_times_out_empty(self):
        queue = BoundedRequestQueue(capacity=2)
        assert queue.get(timeout_s=0.01) is None

    def test_depth_tracks_occupancy(self):
        queue = BoundedRequestQueue(capacity=4)
        assert queue.depth == 0
        queue.put("a")
        queue.put("b")
        assert queue.depth == 2
        queue.get(timeout_s=0)
        assert queue.depth == 1


class TestRejectPolicy:
    def test_full_queue_raises_overload(self):
        queue = BoundedRequestQueue(
            capacity=2, policy=BackpressurePolicy.REJECT
        )
        queue.put("a")
        queue.put("b")
        with pytest.raises(ServiceOverloadError):
            queue.put("c")
        assert queue.n_rejected == 1
        assert queue.n_enqueued == 2
        # The refused entry never entered the queue.
        assert queue.drain() == ["a", "b"]


class TestShedOldestPolicy:
    def test_oldest_entry_returned_to_caller(self):
        queue = BoundedRequestQueue(
            capacity=2, policy=BackpressurePolicy.SHED_OLDEST
        )
        queue.put("a")
        queue.put("b")
        shed = queue.put("c")
        assert shed == "a"
        assert queue.n_shed == 1
        assert queue.drain() == ["b", "c"]

    def test_shed_count_matches_overflow_arithmetic(self):
        capacity = 3
        queue = BoundedRequestQueue(
            capacity=capacity, policy=BackpressurePolicy.SHED_OLDEST
        )
        n_offered = 11
        shed = [
            entry
            for entry in (queue.put(i) for i in range(n_offered))
            if entry is not None
        ]
        assert queue.n_shed == n_offered - capacity
        assert len(shed) == n_offered - capacity
        # Survivors are exactly the newest `capacity` entries, in order.
        assert queue.drain() == list(range(n_offered - capacity, n_offered))


class TestBlockPolicy:
    def test_blocked_put_completes_when_space_frees(self):
        queue = BoundedRequestQueue(
            capacity=1, policy=BackpressurePolicy.BLOCK
        )
        queue.put("a")
        done = threading.Event()

        def producer():
            queue.put("b")
            done.set()

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.05)
        assert not done.is_set()
        assert queue.get(timeout_s=0) == "a"
        thread.join(timeout=2.0)
        assert done.is_set()
        assert queue.get(timeout_s=0) == "b"

    def test_block_timeout_raises_overload(self):
        queue = BoundedRequestQueue(
            capacity=1,
            policy=BackpressurePolicy.BLOCK,
            block_timeout_s=0.02,
        )
        queue.put("a")
        with pytest.raises(ServiceOverloadError):
            queue.put("b")
        assert queue.n_rejected == 1

    def test_close_wakes_blocked_producer(self):
        queue = BoundedRequestQueue(
            capacity=1, policy=BackpressurePolicy.BLOCK
        )
        queue.put("a")
        errors = []

        def producer():
            try:
                queue.put("b")
            except ServiceOverloadError as error:
                errors.append(error)

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=2.0)
        assert len(errors) == 1


class TestClose:
    def test_put_after_close_raises(self):
        queue = BoundedRequestQueue(capacity=2)
        queue.close()
        with pytest.raises(ServiceOverloadError):
            queue.put("a")

    def test_get_after_close_drains_then_none(self):
        queue = BoundedRequestQueue(capacity=2)
        queue.put("a")
        queue.close()
        assert queue.get(timeout_s=0.01) == "a"
        assert queue.get(timeout_s=0.01) is None
