"""Pipeline edge cases and failure injection."""

import numpy as np
import pytest

from repro.core.pipeline import DefenseConfig, DefensePipeline
from repro.core.segmentation import PhonemeSegmenter, SegmenterConfig
from repro.dsp.generators import tone, white_noise
from repro.errors import SignalError

RATE = 16_000.0


def _pair(rng, seconds=2.0):
    burst = white_noise(seconds, RATE, amplitude=0.05, rng=rng)
    return burst, burst[800:].copy()


def test_empty_recordings_rejected():
    pipeline = DefensePipeline(segmenter=None)
    with pytest.raises(SignalError):
        pipeline.analyze(np.zeros(0), np.zeros(0), rng=0)


def test_fallback_when_segments_too_short(corpus):
    """If segmentation yields almost nothing, the pipeline falls back to
    the full recording instead of failing."""
    # A segmenter whose threshold nothing can satisfy.
    segmenter = PhonemeSegmenter(
        config=SegmenterConfig(decision_threshold=0.999),
        rng=0,
    )
    segmenter.train_on_phoneme_segments(
        corpus, n_per_phoneme=2, epochs=1, rng=1
    )
    pipeline = DefensePipeline(segmenter=segmenter)
    va, wearable = _pair(3)
    verdict = pipeline.analyze(va, wearable, rng=2)
    assert verdict.n_segments == 0  # fell back
    assert np.isfinite(verdict.score)


def test_min_audio_fallback_threshold(corpus):
    """Oracle segments shorter than min_audio_s trigger the fallback."""
    utterance = corpus.utterance(["t"], rng=4)  # single brief stop
    pipeline = DefensePipeline(
        segmenter=PhonemeSegmenter(rng=0),
        config=DefenseConfig(min_audio_s=0.5),
    )
    lead = np.zeros(4000)
    va = np.concatenate([lead, utterance.waveform, lead])
    va = va + 0.001 * np.random.default_rng(5).standard_normal(va.size)
    wearable = va[800:].copy()
    verdict = pipeline.analyze(
        va, wearable, rng=6, oracle_utterance=utterance
    )
    assert verdict.n_segments == 0


def _speechlike(rng_seed, seconds=2.0):
    """Broadband amplitude-modulated signal (voice-like test stimulus).

    A single pure tone folds onto one aliased bin and makes the
    correlation degenerate, so tests use band-rich content instead.
    """
    from repro.dsp.filters import butter_bandpass

    carrier = butter_bandpass(
        white_noise(seconds, RATE, amplitude=0.08, rng=rng_seed),
        RATE, 800.0, 3000.0,
    )
    t = np.arange(carrier.size) / RATE
    envelope = 0.6 + 0.4 * np.sin(2 * np.pi * 3.0 * t)
    return carrier * envelope


def test_identical_recordings_score_high():
    pipeline = DefensePipeline(segmenter=None)
    signal = _speechlike(7)
    verdict = pipeline.analyze(signal, signal.copy(), rng=8)
    assert verdict.score > 0.5


def test_unrelated_recordings_score_low():
    pipeline = DefensePipeline(segmenter=None)
    a = white_noise(2.0, RATE, amplitude=0.02, rng=9)
    b = white_noise(2.0, RATE, amplitude=0.02, rng=10)
    verdict = pipeline.analyze(a, b, rng=11)
    assert verdict.score < 0.4


def test_extreme_level_mismatch_handled():
    """Normalization must cancel a large scale difference."""
    pipeline = DefensePipeline(segmenter=None)
    signal = _speechlike(12)
    verdict = pipeline.analyze(signal * 10.0, signal.copy(), rng=13)
    assert verdict.score > 0.5


def test_body_motion_absorbed_by_artifact_mitigation():
    """Detection survives the wearer moving during the replay."""
    pipeline_still = DefensePipeline(segmenter=None)
    pipeline_moving = DefensePipeline(
        segmenter=None, config=DefenseConfig(wearer_moving=True)
    )
    signal = _speechlike(30)
    still = pipeline_still.analyze(signal, signal.copy(), rng=31)
    moving = pipeline_moving.analyze(signal, signal.copy(), rng=31)
    # Same legitimate pair: scores comparable despite motion.
    assert moving.score > 0.5
    assert abs(moving.score - still.score) < 0.25


def test_very_long_recording_ok():
    pipeline = DefensePipeline(segmenter=None)
    signal = tone(1200.0, 8.0, RATE, amplitude=0.03)
    verdict = pipeline.analyze(signal, signal.copy(), rng=14)
    assert np.isfinite(verdict.score)
