"""BRNN phoneme segmentation."""

import numpy as np
import pytest

from repro.core.segmentation import (
    PhonemeSegmenter,
    SegmenterConfig,
    concatenate_segments,
)
from repro.errors import ConfigurationError, ModelError
from repro.phonemes.commands import phonemize

RATE = 16_000.0


@pytest.fixture(scope="module")
def trained_segmenter(corpus):
    segmenter = PhonemeSegmenter(rng=5)
    segmenter.train_on_phoneme_segments(
        corpus, n_per_phoneme=6, epochs=8, rng=6
    )
    return segmenter


class TestConfigAndSetup:
    def test_default_sensitive_set_size(self):
        assert len(PhonemeSegmenter(rng=0).sensitive_phonemes) == 31

    def test_rejects_empty_set(self):
        with pytest.raises(ConfigurationError):
            PhonemeSegmenter(sensitive_phonemes=[], rng=0)

    def test_rejects_unknown_symbol(self):
        with pytest.raises(ConfigurationError):
            PhonemeSegmenter(sensitive_phonemes=["nope"], rng=0)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            SegmenterConfig(decision_threshold=1.5)

    def test_untrained_inference_raises(self, corpus):
        segmenter = PhonemeSegmenter(rng=1)
        utterance = corpus.utterance(["ae"], rng=2)
        with pytest.raises(ModelError):
            segmenter.frame_probabilities(utterance.waveform)


class TestFeaturesAndLabels:
    def test_feature_dim(self, corpus):
        segmenter = PhonemeSegmenter(rng=3)
        utterance = corpus.utterance(phonemize("play music"), rng=4)
        features = segmenter.features(utterance.waveform)
        assert features.shape[1] == 14

    def test_frame_labels_match_alignment(self, corpus):
        segmenter = PhonemeSegmenter(rng=3)
        utterance = corpus.utterance(["s", "ae", "s"], rng=5)
        labels = segmenter.frame_labels(utterance)
        # /s/ is insensitive, /ae/ sensitive: expect a 0-1-0 pattern.
        assert labels.max() == 1
        assert labels.min() == 0
        middle = labels[len(labels) // 3 : 2 * len(labels) // 3]
        assert middle.mean() > 0.5


class TestOracleSegments:
    def test_oracle_extracts_sensitive_intervals(self, corpus):
        segmenter = PhonemeSegmenter(rng=3)
        utterance = corpus.utterance(
            ["s", "ae", "ih", "s", "er"], rng=6
        )
        segments = segmenter.oracle_segments(utterance)
        assert segments
        # The /ae/+/ih/ block and /er/ block; /s/ excluded.
        total = sum(end - start for start, end in segments)
        sensitive_total = sum(
            interval.duration_s
            for interval in utterance.alignment
            if interval.symbol in segmenter.sensitive_phonemes
        )
        assert total == pytest.approx(sensitive_total, rel=0.15)

    def test_oracle_merges_adjacent(self, corpus):
        segmenter = PhonemeSegmenter(rng=3)
        utterance = corpus.utterance(["ae", "ih", "er"], rng=7)
        segments = segmenter.oracle_segments(utterance)
        assert len(segments) == 1


class TestTrainedSegmenter:
    def test_classifies_strong_vowel_positive(self, trained_segmenter,
                                              corpus):
        segment = corpus.phoneme_population("ae", 1, rng=8)[0]
        assert trained_segmenter.classify_segment(
            segment.waveform * 3.0
        )

    def test_classifies_weak_fricative_negative(self, trained_segmenter,
                                                corpus):
        segment = corpus.phoneme_population("s", 1, rng=9)[0]
        assert not trained_segmenter.classify_segment(
            segment.waveform * 3.0
        )

    def test_segments_found_in_utterance(self, trained_segmenter,
                                         corpus):
        utterance = corpus.utterance(
            phonemize("alexa play my favorite playlist"), rng=10
        )
        segments = trained_segmenter.segments(utterance.waveform)
        assert segments
        for start, end in segments:
            assert end > start

    def test_save_load_roundtrip(self, trained_segmenter, corpus,
                                 tmp_path):
        utterance = corpus.utterance(phonemize("play music"), rng=11)
        expected = trained_segmenter.frame_probabilities(
            utterance.waveform
        )
        path = tmp_path / "segmenter.npz"
        trained_segmenter.save(path)
        restored = PhonemeSegmenter(rng=99)
        restored.load_weights(path)
        np.testing.assert_allclose(
            restored.frame_probabilities(utterance.waveform),
            expected,
            atol=1e-10,
        )

    def test_save_untrained_raises(self, tmp_path):
        with pytest.raises(ModelError):
            PhonemeSegmenter(rng=0).save(tmp_path / "x.npz")


class TestConcatenate:
    def test_extracts_requested_spans(self):
        audio = np.arange(1600, dtype=float)
        out = concatenate_segments(
            audio, [(0.0, 0.01), (0.05, 0.06)], RATE, fade_s=0.0
        )
        assert out.size == 320

    def test_fades_edges(self):
        audio = np.ones(3200)
        out = concatenate_segments(
            audio, [(0.0, 0.1)], RATE, fade_s=0.01
        )
        assert out[0] == pytest.approx(0.0)
        assert out[out.size // 2] == pytest.approx(1.0)

    def test_empty_segments_give_empty_array(self):
        assert concatenate_segments(np.ones(100), [], RATE).size == 0

    def test_out_of_range_segments_clamped(self):
        audio = np.ones(160)
        out = concatenate_segments(
            audio, [(-1.0, 0.005), (0.009, 5.0)], RATE, fade_s=0.0
        )
        assert out.size == 80 + (160 - 144)
