"""Randomized detector defenses: threshold jitter + phoneme subsets."""

import numpy as np
import pytest

from repro.core.detector import CorrelationDetector, DetectorConfig
from repro.core.hardening import HardeningConfig, sample_subset
from repro.core.phoneme_selection import PhonemeSelectionResult
from repro.core.pipeline import DefenseConfig, DefensePipeline
from repro.core.segmentation import PhonemeSegmenter
from repro.errors import ConfigurationError

SYMBOLS = tuple(f"p{i}" for i in range(10))


# ----------------------------------------------------------------------
# sample_subset / HardeningConfig
# ----------------------------------------------------------------------


def test_sample_subset_size_and_membership():
    rng = np.random.default_rng(0)
    subset = sample_subset(SYMBOLS, 0.5, 2, rng)
    assert len(subset) == 5
    assert subset <= set(SYMBOLS)


def test_sample_subset_full_fraction_is_identity_without_draw():
    rng = np.random.default_rng(0)
    before = rng.bit_generator.state
    subset = sample_subset(SYMBOLS, 1.0, 1, rng)
    assert subset == set(SYMBOLS)
    assert rng.bit_generator.state == before


def test_sample_subset_respects_min_size():
    rng = np.random.default_rng(0)
    assert len(sample_subset(SYMBOLS, 0.1, 4, rng)) == 4


def test_sample_subset_is_seed_deterministic():
    a = sample_subset(SYMBOLS, 0.6, 2, np.random.default_rng(9))
    b = sample_subset(SYMBOLS, 0.6, 2, np.random.default_rng(9))
    assert a == b


def test_hardening_config_validation():
    with pytest.raises(ConfigurationError):
        HardeningConfig(threshold_jitter=-0.1)
    with pytest.raises(ConfigurationError):
        HardeningConfig(threshold_jitter=1.5)
    with pytest.raises(ConfigurationError):
        HardeningConfig(subset_fraction=0.0)
    with pytest.raises(ConfigurationError):
        HardeningConfig(subset_fraction=1.2)
    with pytest.raises(ConfigurationError):
        HardeningConfig(min_subset=0)


def test_hardening_config_activity_flags():
    off = HardeningConfig()
    assert not off.active
    jitter = HardeningConfig(threshold_jitter=0.05)
    assert jitter.randomizes_threshold and not jitter.randomizes_subset
    subset = HardeningConfig(subset_fraction=0.5)
    assert subset.randomizes_subset and not subset.randomizes_threshold
    assert subset.active


# ----------------------------------------------------------------------
# CorrelationDetector.with_randomized_threshold
# ----------------------------------------------------------------------


def test_randomized_threshold_draw_stays_in_jitter_window():
    detector = CorrelationDetector(DetectorConfig(threshold=0.3))
    for seed in range(20):
        jittered = detector.with_randomized_threshold(seed, 0.05)
        assert abs(jittered.config.threshold - 0.3) <= 0.05


def test_randomized_threshold_is_seed_deterministic():
    detector = CorrelationDetector(DetectorConfig(threshold=0.3))
    a = detector.with_randomized_threshold(11, 0.05)
    b = detector.with_randomized_threshold(11, 0.05)
    assert a.config.threshold == b.config.threshold


def test_randomized_threshold_requires_base_threshold():
    detector = CorrelationDetector(DetectorConfig(threshold=None))
    with pytest.raises(ConfigurationError):
        detector.with_randomized_threshold(0, 0.05)


def test_randomized_threshold_rejects_out_of_bounds_jitter():
    detector = CorrelationDetector(DetectorConfig(threshold=0.98))
    with pytest.raises(ConfigurationError):
        detector.with_randomized_threshold(0, 0.05)
    with pytest.raises(ConfigurationError):
        CorrelationDetector(
            DetectorConfig(threshold=0.3)
        ).with_randomized_threshold(0, -0.01)


# ----------------------------------------------------------------------
# PhonemeSelectionResult.session_subset
# ----------------------------------------------------------------------


def _selection(selected=SYMBOLS):
    return PhonemeSelectionResult(
        selected=tuple(selected),
        satisfies_criterion_1=tuple(selected),
        satisfies_criterion_2=tuple(selected),
        profiles={},
        alpha=0.1,
    )


def test_session_subset_nonce_stability():
    result = _selection()
    assert result.session_subset(42) == result.session_subset(42)
    assert result.session_subset(42) != result.session_subset(43)


def test_session_subset_preserves_selection_order():
    result = _selection()
    subset = result.session_subset(7, fraction=0.5)
    positions = [SYMBOLS.index(symbol) for symbol in subset]
    assert positions == sorted(positions)


def test_session_subset_rejects_empty_selection():
    with pytest.raises(ConfigurationError):
        _selection(selected=()).session_subset(0)


# ----------------------------------------------------------------------
# PhonemeSegmenter.with_sensitive_subset
# ----------------------------------------------------------------------


def test_with_sensitive_subset_clones_without_mutation():
    segmenter = PhonemeSegmenter()
    full = set(segmenter.sensitive_phonemes)
    subset = set(list(full)[: len(full) // 2])
    clone = segmenter.with_sensitive_subset(subset)
    assert set(clone.sensitive_phonemes) == subset
    assert set(segmenter.sensitive_phonemes) == full


def test_with_sensitive_subset_rejects_unknown_and_empty():
    segmenter = PhonemeSegmenter()
    with pytest.raises(ConfigurationError):
        segmenter.with_sensitive_subset(set())
    with pytest.raises(ConfigurationError):
        segmenter.with_sensitive_subset({"not-a-phoneme"})


# ----------------------------------------------------------------------
# Pipeline integration: the zero-extra-draw contract
# ----------------------------------------------------------------------


def _recordings(seed=0, n=24_000):
    rng = np.random.default_rng(seed)
    va = rng.normal(size=n)
    wearable = rng.normal(size=n)
    return va, wearable


def test_defense_config_jitter_requires_threshold():
    with pytest.raises(ConfigurationError):
        DefenseConfig(
            detector=DetectorConfig(threshold=None),
            hardening=HardeningConfig(threshold_jitter=0.05),
        )


def test_disabled_hardening_is_bitwise_noop():
    """hardening=None and an all-off config consume zero extra draws."""
    va, wearable = _recordings()
    base = DefensePipeline(
        config=DefenseConfig(detector=DetectorConfig(threshold=0.3))
    )
    noop = DefensePipeline(
        config=DefenseConfig(
            detector=DetectorConfig(threshold=0.3),
            hardening=HardeningConfig(),
        )
    )
    a = base.analyze(va, wearable, rng=5)
    b = noop.analyze(va, wearable, rng=5)
    assert a.score == b.score
    assert a.is_attack == b.is_attack


def test_threshold_jitter_changes_decision_not_score():
    va, wearable = _recordings()
    # Deploy the threshold on top of the observed score distribution so
    # the jitter window straddles the decision boundary.
    threshold = DefensePipeline().score(va, wearable, rng=0) + 0.005
    base = DefensePipeline(
        config=DefenseConfig(detector=DetectorConfig(threshold=threshold))
    )
    hardened = DefensePipeline(
        config=DefenseConfig(
            detector=DetectorConfig(threshold=threshold),
            hardening=HardeningConfig(threshold_jitter=0.05),
        )
    )
    flipped = False
    for seed in range(40):
        plain = base.analyze(va, wearable, rng=seed)
        jittered = hardened.analyze(va, wearable, rng=seed)
        # Jitter moves the decision boundary, never the score.
        assert jittered.score == plain.score
        if jittered.is_attack != plain.is_attack:
            flipped = True
    assert flipped


def test_threshold_jitter_is_session_deterministic():
    va, wearable = _recordings()
    hardened = DefensePipeline(
        config=DefenseConfig(
            detector=DetectorConfig(threshold=0.3),
            hardening=HardeningConfig(threshold_jitter=0.1),
        )
    )
    a = hardened.analyze(va, wearable, rng=12)
    b = hardened.analyze(va, wearable, rng=12)
    assert a.score == b.score
    assert a.is_attack == b.is_attack
