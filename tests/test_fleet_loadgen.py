"""Fleet loadgen: user model determinism, accounting, Zipf skew."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fleet import (
    FleetConfig,
    FleetFrontDoor,
    FleetLoadgenConfig,
    SimulatedEngineConfig,
    SloConfig,
    make_fleet_request,
    run_fleet_loadgen,
    simulated_shard_factory,
)
from repro.serve.loadgen import RecordingPool, UserActivityModel


@pytest.fixture(scope="module")
def tiny_pool():
    """Audio content is irrelevant to simulated shards."""
    audio = np.zeros(160)
    return RecordingPool(
        pairs=[(audio, audio, False), (audio, audio, True)]
    )


class TestUserActivityModel:
    def test_rank_stream_is_deterministic(self):
        a = UserActivityModel(users=1000, zipf_s=1.1, seed=3)
        b = UserActivityModel(users=1000, zipf_s=1.1, seed=3)
        assert [a.user_rank(i) for i in range(200)] == [
            b.user_rank(i) for i in range(200)
        ]

    def test_rank_derivation_is_index_independent(self):
        """Rank at index i never depends on earlier draws."""
        model = UserActivityModel(users=1000, seed=5)
        forward = [model.user_rank(i) for i in range(50)]
        shuffled = [model.user_rank(i) for i in reversed(range(50))]
        assert forward == list(reversed(shuffled))

    def test_zipf_head_dominates(self):
        model = UserActivityModel(users=100_000, zipf_s=1.1, seed=0)
        ranks = [model.user_rank(i) for i in range(3000)]
        head_share = sum(1 for rank in ranks if rank < 100) / 3000
        assert head_share > 0.4
        assert model.weight(0) > model.weight(10) > model.weight(1000)

    def test_zipf_zero_is_uniform(self):
        model = UserActivityModel(users=10, zipf_s=0.0, seed=0)
        assert model.weight(0) == pytest.approx(0.1)
        assert model.weight(9) == pytest.approx(0.1)

    def test_interarrival_mean_approximates_rate(self):
        model = UserActivityModel(users=10, seed=2)
        gaps = [
            model.interarrival_s(i, rate_rps=100.0, alpha=2.5)
            for i in range(4000)
        ]
        assert np.mean(gaps) == pytest.approx(0.01, rel=0.25)
        # Heavy tail: the max gap dwarfs the median.
        assert max(gaps) > 10 * np.median(gaps)

    def test_interarrival_validation(self):
        model = UserActivityModel(users=10)
        with pytest.raises(ConfigurationError):
            model.interarrival_s(0, rate_rps=0.0)
        with pytest.raises(ConfigurationError):
            model.interarrival_s(0, rate_rps=10.0, alpha=1.0)

    def test_invalid_population(self):
        with pytest.raises(ConfigurationError):
            UserActivityModel(users=0)
        with pytest.raises(ConfigurationError):
            UserActivityModel(users=10, zipf_s=-1.0)


class TestFleetLoadgen:
    def _fleet(self):
        slo = SloConfig()
        return FleetFrontDoor(
            simulated_shard_factory(
                engine_config=SimulatedEngineConfig(
                    n_workers=2,
                    service_time_s=0.001,
                    queue_capacity=256,
                ),
                slo=slo,
            ),
            FleetConfig(
                n_shards=2, slo=slo, autoscale_interval_s=0.0
            ),
        )

    def test_accounting_partitions_issued(self, tiny_pool):
        config = FleetLoadgenConfig(
            n_requests=60, users=500, rate_rps=2000.0, seed=1
        )
        with self._fleet() as fleet:
            report = run_fleet_loadgen(fleet, config, pool=tiny_pool)
            metrics = fleet.metrics()
        assert report.n_issued == 60
        assert (
            report.n_served
            + report.n_rejected
            + report.n_shed
            + report.n_failed
            == 60
        )
        assert metrics.n_routed == 60
        assert metrics.n_unresolved == 0
        assert report.throughput_rps > 0
        assert len(report.latencies_s) == report.n_served

    def test_request_stream_is_deterministic(self, tiny_pool):
        config = FleetLoadgenConfig(
            n_requests=30, users=10_000, seed=9
        )
        users = config.user_model()
        stream_a = [
            make_fleet_request(config, tiny_pool, users, i)
            for i in range(30)
        ]
        stream_b = [
            make_fleet_request(config, tiny_pool, users, i)
            for i in range(30)
        ]
        for a, b in zip(stream_a, stream_b):
            assert a.user_id == b.user_id
            assert a.seed == b.seed
            assert a.priority == b.priority
            assert a.request_id == b.request_id

    def test_priority_fraction_respected(self, tiny_pool):
        config = FleetLoadgenConfig(
            n_requests=400,
            users=100,
            priority_fraction=0.25,
            seed=4,
        )
        users = config.user_model()
        protected = sum(
            make_fleet_request(config, tiny_pool, users, i).priority
            for i in range(400)
        )
        assert 60 <= protected <= 140

    def test_invalid_configs_rejected(self):
        for kwargs in (
            {"n_requests": 0},
            {"users": 0},
            {"zipf_s": -0.1},
            {"rate_rps": 0.0},
            {"pareto_alpha": 1.0},
            {"priority_fraction": 1.5},
            {"deadline_s": 0.0},
        ):
            with pytest.raises(ConfigurationError):
                FleetLoadgenConfig(**kwargs)
