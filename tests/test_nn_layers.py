"""LSTM / BRNN / Dense layers, including exact gradient checks."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn.bidirectional import BidirectionalLSTM
from repro.nn.dense import Dense
from repro.nn.initializers import glorot_uniform, orthogonal
from repro.nn.lstm import LSTMLayer


class TestInitializers:
    def test_glorot_range(self):
        weights = glorot_uniform((50, 60), rng=0)
        limit = np.sqrt(6.0 / 110)
        assert np.all(np.abs(weights) <= limit)

    def test_orthogonal_is_orthogonal(self):
        matrix = orthogonal((16, 16), rng=1)
        np.testing.assert_allclose(
            matrix @ matrix.T, np.eye(16), atol=1e-10
        )

    def test_orthogonal_rectangular(self):
        matrix = orthogonal((8, 16), rng=2)
        np.testing.assert_allclose(
            matrix @ matrix.T, np.eye(8), atol=1e-10
        )


class TestLSTM:
    def test_forward_shape(self):
        layer = LSTMLayer(3, 5, rng=0)
        out = layer.forward(np.zeros((2, 7, 3)))
        assert out.shape == (2, 7, 5)

    def test_rejects_bad_input_shape(self):
        layer = LSTMLayer(3, 5, rng=0)
        with pytest.raises(ModelError):
            layer.forward(np.zeros((2, 7, 4)))

    def test_backward_before_forward_raises(self):
        layer = LSTMLayer(3, 5, rng=0)
        with pytest.raises(ModelError):
            layer.backward(np.zeros((2, 7, 5)))

    def test_gradient_check(self, rng):
        layer = LSTMLayer(3, 4, rng=1)
        x = rng.standard_normal((2, 6, 3))
        target = rng.standard_normal((2, 6, 4))

        def loss():
            return 0.5 * np.sum((layer.forward(x) - target) ** 2)

        hidden = layer.forward(x)
        layer.zero_grads()
        layer.backward(hidden - target)
        eps = 1e-6
        for key in ("W", "U", "b"):
            param = layer.params[key]
            index = (0,) if param.ndim == 1 else (1, 2)
            param[index] += eps
            loss_plus = loss()
            param[index] -= 2 * eps
            loss_minus = loss()
            param[index] += eps
            numeric = (loss_plus - loss_minus) / (2 * eps)
            analytic = layer.grads[key][index]
            assert numeric == pytest.approx(analytic, rel=1e-4)

    def test_input_gradient_check(self, rng):
        layer = LSTMLayer(2, 3, rng=2)
        x = rng.standard_normal((1, 5, 2))
        target = rng.standard_normal((1, 5, 3))
        hidden = layer.forward(x)
        layer.zero_grads()
        dx = layer.backward(hidden - target)
        eps = 1e-6
        x_perturbed = x.copy()
        x_perturbed[0, 2, 1] += eps
        loss_plus = 0.5 * np.sum(
            (layer.forward(x_perturbed) - target) ** 2
        )
        x_perturbed[0, 2, 1] -= 2 * eps
        loss_minus = 0.5 * np.sum(
            (layer.forward(x_perturbed) - target) ** 2
        )
        numeric = (loss_plus - loss_minus) / (2 * eps)
        assert numeric == pytest.approx(dx[0, 2, 1], rel=1e-4)

    def test_forget_bias_initialized_positive(self):
        layer = LSTMLayer(3, 4, rng=3)
        assert np.all(layer.params["b"][4:8] == 1.0)


class TestBidirectional:
    def test_output_shape(self):
        brnn = BidirectionalLSTM(3, 4, rng=0)
        out = brnn.forward(np.zeros((2, 5, 3)))
        assert out.shape == (2, 5, 4)

    def test_uses_future_context(self, rng):
        # Output at t=0 must depend on input at the last step.
        brnn = BidirectionalLSTM(2, 3, rng=1)
        x = rng.standard_normal((1, 6, 2))
        base = brnn.forward(x)[0, 0]
        x_mod = x.copy()
        x_mod[0, -1] += 1.0
        modified = brnn.forward(x_mod)[0, 0]
        assert not np.allclose(base, modified)

    def test_param_keys_prefixed(self):
        brnn = BidirectionalLSTM(2, 3, rng=2)
        keys = set(brnn.params)
        assert {"fwd_W", "fwd_U", "fwd_b", "bwd_W", "bwd_U",
                "bwd_b"} == keys

    def test_gradient_check(self, rng):
        brnn = BidirectionalLSTM(2, 3, rng=3)
        x = rng.standard_normal((1, 4, 2))
        target = rng.standard_normal((1, 4, 3))
        hidden = brnn.forward(x)
        brnn.zero_grads()
        brnn.backward(hidden - target)
        eps = 1e-6
        param = brnn.backward_layer.params["W"]
        analytic = brnn.backward_layer.grads["W"][0, 1]
        param[0, 1] += eps
        loss_plus = 0.5 * np.sum((brnn.forward(x) - target) ** 2)
        param[0, 1] -= 2 * eps
        loss_minus = 0.5 * np.sum((brnn.forward(x) - target) ** 2)
        param[0, 1] += eps
        numeric = (loss_plus - loss_minus) / (2 * eps)
        assert numeric == pytest.approx(analytic, rel=1e-4)


class TestDense:
    def test_forward_affine(self):
        dense = Dense(3, 2, rng=0)
        dense.params["W"][...] = np.arange(6).reshape(3, 2)
        dense.params["b"][...] = [1.0, -1.0]
        out = dense.forward(np.array([[1.0, 0.0, 0.0]]))
        np.testing.assert_allclose(out, [[1.0, 0.0]])

    def test_gradient_check(self, rng):
        dense = Dense(4, 3, rng=1)
        x = rng.standard_normal((5, 4))
        target = rng.standard_normal((5, 3))
        out = dense.forward(x)
        dense.zero_grads()
        dense.backward(out - target)
        eps = 1e-6
        param = dense.params["W"]
        analytic = dense.grads["W"][2, 1]
        param[2, 1] += eps
        loss_plus = 0.5 * np.sum((dense.forward(x) - target) ** 2)
        param[2, 1] -= 2 * eps
        loss_minus = 0.5 * np.sum((dense.forward(x) - target) ** 2)
        param[2, 1] += eps
        numeric = (loss_plus - loss_minus) / (2 * eps)
        assert numeric == pytest.approx(analytic, rel=1e-5)

    def test_works_on_3d_inputs(self, rng):
        dense = Dense(4, 2, rng=2)
        out = dense.forward(rng.standard_normal((2, 7, 4)))
        assert out.shape == (2, 7, 2)

    def test_rejects_wrong_last_dim(self):
        dense = Dense(4, 2, rng=3)
        with pytest.raises(ModelError):
            dense.forward(np.zeros((2, 3)))
