"""Window functions and framing."""

import numpy as np
import pytest

from repro.dsp.windows import frame_signal, get_window
from repro.errors import ConfigurationError, SignalError


@pytest.mark.parametrize("name", ["hann", "hamming", "rect", "blackman"])
def test_window_length(name):
    window = get_window(name, 32)
    assert window.shape == (32,)


def test_rect_window_is_ones():
    np.testing.assert_array_equal(get_window("rect", 5), np.ones(5))


def test_unknown_window_raises():
    with pytest.raises(ConfigurationError):
        get_window("kaiser", 8)


def test_zero_length_window_raises():
    with pytest.raises(ConfigurationError):
        get_window("hann", 0)


def test_frame_signal_shapes():
    frames = frame_signal(np.arange(100, dtype=float), 10, 5)
    assert frames.shape[1] == 10
    # 100 samples, frame 10, hop 5 -> 1 + ceil(90/5) = 19 frames
    assert frames.shape[0] == 19


def test_frame_signal_content():
    frames = frame_signal(np.arange(20, dtype=float), 4, 2,
                          pad_final=False)
    np.testing.assert_array_equal(frames[0], [0, 1, 2, 3])
    np.testing.assert_array_equal(frames[1], [2, 3, 4, 5])


def test_frame_signal_pads_final_frame():
    frames = frame_signal(np.ones(7), 4, 4, pad_final=True)
    assert frames.shape == (2, 4)
    np.testing.assert_array_equal(frames[1], [1, 1, 1, 0])


def test_frame_signal_drop_final():
    frames = frame_signal(np.ones(7), 4, 4, pad_final=False)
    assert frames.shape == (1, 4)


def test_short_signal_padded_to_one_frame():
    frames = frame_signal(np.ones(3), 8, 4)
    assert frames.shape == (1, 8)
    assert frames[0, :3].sum() == 3.0
    assert frames[0, 3:].sum() == 0.0


def test_short_signal_raises_without_padding():
    with pytest.raises(SignalError):
        frame_signal(np.ones(3), 8, 4, pad_final=False)


@pytest.mark.parametrize("frame,hop", [(0, 1), (4, 0), (-1, 2)])
def test_invalid_framing_params(frame, hop):
    with pytest.raises(ConfigurationError):
        frame_signal(np.ones(16), frame, hop)
