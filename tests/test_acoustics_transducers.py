"""Microphone and loudspeaker models."""

import numpy as np
import pytest

from repro.acoustics.loudspeaker import (
    Loudspeaker,
    LoudspeakerSpec,
    SOUND_BAR,
    WEARABLE_SPEAKER,
)
from repro.acoustics.microphone import (
    LAPTOP_MIC,
    Microphone,
    MicrophoneSpec,
    PHONE_MIC,
    SMART_SPEAKER_MIC,
    WEARABLE_MIC,
)
from repro.dsp.generators import tone
from repro.errors import ConfigurationError

RATE = 16_000.0


def _rms(x):
    return float(np.sqrt(np.mean(x**2)))


class TestMicrophone:
    def test_capture_preserves_length(self):
        mic = Microphone(SMART_SPEAKER_MIC)
        signal = tone(500.0, 0.25, RATE)
        assert mic.capture(signal, RATE, rng=0).size == signal.size

    def test_far_field_gain_ordering(self):
        signal = tone(500.0, 0.5, RATE, amplitude=0.05)
        smart = Microphone(SMART_SPEAKER_MIC).capture(signal, RATE, rng=0)
        phone = Microphone(PHONE_MIC).capture(signal, RATE, rng=0)
        assert _rms(smart) > _rms(phone)

    def test_noise_floor_present_in_silence(self):
        mic = Microphone(PHONE_MIC)
        recording = mic.capture(np.zeros(8000), RATE, rng=1)
        assert _rms(recording) > 0

    def test_band_edges_attenuate(self):
        mic = Microphone(WEARABLE_MIC)
        in_band = tone(1000.0, 0.5, RATE, amplitude=0.1)
        sub_band = tone(20.0, 0.5, RATE, amplitude=0.1)
        assert _rms(mic.capture(sub_band, RATE, rng=2)) < 0.5 * _rms(
            mic.capture(in_band, RATE, rng=2)
        )

    def test_clipping(self):
        mic = Microphone(SMART_SPEAKER_MIC)
        loud = tone(500.0, 0.1, RATE, amplitude=10.0)
        recording = mic.capture(loud, RATE, rng=3)
        assert np.max(np.abs(recording)) <= SMART_SPEAKER_MIC.clip_level

    def test_invalid_spec(self):
        with pytest.raises(ConfigurationError):
            MicrophoneSpec(name="bad", low_cut_hz=500.0,
                           high_cut_hz=100.0)

    def test_all_device_specs_distinct(self):
        specs = [SMART_SPEAKER_MIC, LAPTOP_MIC, PHONE_MIC, WEARABLE_MIC]
        names = {spec.name for spec in specs}
        assert len(names) == 4


class TestLoudspeaker:
    def test_band_limits_low_end(self):
        speaker = Loudspeaker(SOUND_BAR)
        low = tone(40.0, 0.5, RATE)
        mid = tone(1000.0, 0.5, RATE)
        assert _rms(speaker.play(low, RATE)) < 0.2 * _rms(
            speaker.play(mid, RATE)
        )

    def test_wearable_speaker_weaker_bass(self):
        low = tone(250.0, 0.5, RATE)
        sound_bar = Loudspeaker(SOUND_BAR).play(low, RATE)
        wearable = Loudspeaker(WEARABLE_SPEAKER).play(low, RATE)
        assert _rms(wearable) < _rms(sound_bar)

    def test_distortion_adds_second_harmonic(self):
        spec = LoudspeakerSpec(name="distorting",
                               harmonic_distortion=0.2)
        speaker = Loudspeaker(spec)
        out = speaker.play(tone(500.0, 0.5, RATE), RATE)
        from repro.dsp.spectrum import fft_magnitude

        freqs, mags = fft_magnitude(out, RATE)
        fundamental = mags[np.argmin(np.abs(freqs - 500.0))]
        second = mags[np.argmin(np.abs(freqs - 1000.0))]
        assert second > 0.02 * fundamental

    def test_zero_distortion_is_linear(self):
        spec = LoudspeakerSpec(name="clean", harmonic_distortion=0.0)
        speaker = Loudspeaker(spec)
        signal = tone(500.0, 0.25, RATE)
        a = speaker.play(signal, RATE)
        b = speaker.play(2.0 * signal, RATE)
        np.testing.assert_allclose(b, 2.0 * a, rtol=1e-9)

    def test_invalid_spec(self):
        with pytest.raises(ConfigurationError):
            LoudspeakerSpec(name="bad", low_cut_hz=0.0)
