"""Property-based tests on detection-metric invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.eval.metrics import (
    auc_from_scores,
    eer_from_scores,
    roc_curve,
)

scores = arrays(
    np.float64,
    st.integers(min_value=2, max_value=40),
    elements=st.floats(min_value=-1.0, max_value=1.0,
                       allow_nan=False),
)


@given(scores, scores)
@settings(max_examples=60, deadline=None)
def test_auc_in_unit_interval(legit, attack):
    value = auc_from_scores(legit, attack)
    assert 0.0 <= value <= 1.0


@given(scores, scores)
@settings(max_examples=60, deadline=None)
def test_auc_antisymmetric_under_swap(legit, attack):
    forward = auc_from_scores(legit, attack)
    backward = auc_from_scores(attack, legit)
    assert forward + backward == 1.0 or abs(
        forward + backward - 1.0
    ) < 1e-9


@given(scores, scores)
@settings(max_examples=60, deadline=None)
def test_eer_bounded(legit, attack):
    eer, threshold = eer_from_scores(legit, attack)
    assert 0.0 <= eer <= 1.0
    assert np.isfinite(threshold)


# Grid-valued scores/scales for the scaling test: with arbitrary floats,
# a subnormal score times a scale < 1 underflows to 0.0, creating new
# ties that legitimately change the AUC.  On a 0.01 grid scaled by a
# 0.1-grid factor the products stay far from underflow and distinct
# scores stay distinct, so exact AUC equality is a true invariant.
grid_scores = arrays(
    np.float64,
    st.integers(min_value=2, max_value=40),
    elements=st.integers(min_value=-100, max_value=100).map(
        lambda n: n / 100.0
    ),
)

grid_scale = st.integers(min_value=1, max_value=50).map(lambda n: n / 10.0)


@given(grid_scores, grid_scores, grid_scale)
@settings(max_examples=40, deadline=None)
def test_auc_invariant_to_monotone_scaling(legit, attack, scale):
    base = auc_from_scores(legit, attack)
    scaled = auc_from_scores(legit * scale, attack * scale)
    assert base == scaled


@given(scores, scores)
@settings(max_examples=40, deadline=None)
def test_roc_is_monotone(legit, attack):
    _, fdr, tdr = roc_curve(legit, attack)
    assert np.all(np.diff(fdr) >= 0)
    assert np.all(np.diff(tdr) >= 0)
    assert fdr[-1] == 1.0 and tdr[-1] == 1.0


@given(scores)
@settings(max_examples=40, deadline=None)
def test_perfect_shifted_separation_gives_auc_one(values):
    legit = values + 10.0
    attack = values - 10.0
    assert auc_from_scores(legit, attack) == 1.0
    eer, _ = eer_from_scores(legit, attack)
    assert eer == 0.0
