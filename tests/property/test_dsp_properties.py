"""Property-based tests on DSP invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dsp.correlate import (
    align_by_cross_correlation,
    correlation_2d,
    cross_correlation_delay,
)
from repro.dsp.mel import hz_to_mel, mel_to_hz
from repro.dsp.resample import folded_frequency
from repro.dsp.spectrum import fft_magnitude
from repro.dsp.windows import frame_signal

finite_1d = arrays(
    np.float64,
    st.integers(min_value=16, max_value=200),
    elements=st.floats(
        min_value=-10.0, max_value=10.0, allow_nan=False
    ),
)

finite_2d = arrays(
    np.float64,
    st.tuples(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=2, max_value=12),
    ),
    elements=st.floats(min_value=-5.0, max_value=5.0,
                       allow_nan=False),
)


@given(finite_2d)
@settings(max_examples=50, deadline=None)
def test_correlation_2d_self_is_one_or_zero(matrix):
    value = correlation_2d(matrix, matrix)
    # 1 for non-constant matrices; 0 for degenerate constants.
    assert value == 1.0 or value == 0.0 or abs(value - 1.0) < 1e-9


@given(finite_2d, finite_2d)
@settings(max_examples=50, deadline=None)
def test_correlation_2d_bounded(a, b):
    value = correlation_2d(a, b)
    assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


@given(finite_2d, finite_2d)
@settings(max_examples=50, deadline=None)
def test_correlation_2d_symmetric(a, b):
    rows = min(a.shape[0], b.shape[0])
    cols = min(a.shape[1], b.shape[1])
    a, b = a[:rows, :cols], b[:rows, :cols]
    assert correlation_2d(a, b) == correlation_2d(b, a)


@given(
    st.floats(min_value=0.0, max_value=20_000.0),
    st.floats(min_value=10.0, max_value=1000.0),
)
@settings(max_examples=100, deadline=None)
def test_folded_frequency_within_nyquist(frequency, rate):
    folded = folded_frequency(frequency, rate)
    assert 0.0 <= folded <= rate / 2 + 1e-9


@given(st.floats(min_value=0.0, max_value=8000.0))
@settings(max_examples=100, deadline=None)
def test_mel_roundtrip_property(frequency):
    roundtrip = float(mel_to_hz(hz_to_mel(np.array(frequency))))
    np.testing.assert_allclose(roundtrip, frequency, rtol=1e-9,
                               atol=1e-6)


@given(finite_1d, st.integers(min_value=0, max_value=30))
@settings(max_examples=40, deadline=None)
def test_alignment_outputs_equal_length(signal, shift):
    signal = signal + 1e-3  # avoid the all-zero degenerate case
    shifted = signal[shift:] if shift < signal.size else signal
    if shifted.size == 0:
        return
    va_a, wearable_a, _ = align_by_cross_correlation(
        signal, shifted, max_lag=signal.size - 1
    )
    assert va_a.size == wearable_a.size
    assert va_a.size > 0


@given(finite_1d)
@settings(max_examples=40, deadline=None)
def test_delay_of_signal_with_itself_is_zero_unless_periodic(signal):
    if np.allclose(signal, signal[0]):
        return  # constant signals have undefined alignment
    delay = cross_correlation_delay(signal, signal.copy(), max_lag=5)
    # For generic (non-periodic) content the best lag is 0.
    assert -5 <= delay <= 5


@given(
    finite_1d,
    st.integers(min_value=2, max_value=32),
    st.integers(min_value=1, max_value=16),
)
@settings(max_examples=50, deadline=None)
def test_framing_covers_all_samples(signal, frame, hop):
    frames = frame_signal(signal, frame, hop, pad_final=True)
    n_frames = frames.shape[0]
    # Enough frames to cover the signal.
    assert (n_frames - 1) * hop + frame >= signal.size


@given(finite_1d, st.floats(min_value=100.0, max_value=48_000.0))
@settings(max_examples=50, deadline=None)
def test_fft_magnitude_nonnegative(signal, rate):
    _, mags = fft_magnitude(signal, rate)
    assert np.all(mags >= 0.0)
