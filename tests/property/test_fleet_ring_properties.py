"""Property-based tests on the fleet's consistent-hash ring.

The two guarantees the fleet's routing rests on:

* **Balance** — with enough virtual nodes, key ownership across the
  10^5-user population stays within tolerance of the fair share, so
  no shard silently carries a multiple of the others' load.
* **Minimal remap** — adding or removing one shard only touches the
  keys of the changed arc: at most ~K/n keys move, and every moved
  key moves *to* the joined shard (or *from* the removed one), never
  between two unchanged shards.  This is what keeps profile caches
  warm across fleet resizes.

Determinism across processes (``blake2b``, not ``hash()``) is pinned
by an exact placement check.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.errors import ConfigurationError
from repro.fleet.hashing import ConsistentHashRing

shard_counts = st.integers(min_value=2, max_value=8)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _shards(n):
    return [f"shard-{i}" for i in range(n)]


def _keys(n, tag=0):
    return [f"user-{tag}-{i}" for i in range(n)]


def test_balance_within_tolerance_at_1e5_keys():
    """10^5 keys spread within 1.5x of fair share on a 4-shard ring."""
    ring = ConsistentHashRing(_shards(4))
    counts = ring.ownership_counts(_keys(100_000))
    fair = 100_000 / 4
    assert sum(counts.values()) == 100_000
    for shard_id, count in counts.items():
        assert count < 1.5 * fair, (shard_id, count)
        assert count > fair / 1.5, (shard_id, count)


@given(shard_counts, seeds)
@settings(max_examples=25, deadline=None)
def test_balance_small_populations(n_shards, seed):
    """Every shard owns a nonzero, bounded share of 5000 keys."""
    ring = ConsistentHashRing(_shards(n_shards))
    counts = ring.ownership_counts(_keys(5000, tag=seed))
    fair = 5000 / n_shards
    assert sum(counts.values()) == 5000
    for count in counts.values():
        assert 0 < count < 2.5 * fair


@given(shard_counts, seeds)
@settings(max_examples=25, deadline=None)
def test_join_minimal_remap(n_shards, seed):
    """Joining shard n+1: moved keys all land on it, and few move."""
    keys = _keys(4000, tag=seed)
    ring = ConsistentHashRing(_shards(n_shards))
    before = {key: ring.owner(key) for key in keys}
    ring.add("shard-new")
    moved = 0
    for key in keys:
        after = ring.owner(key)
        if after != before[key]:
            moved += 1
            # Minimal-remap invariant: a moved key can only have
            # moved to the shard that joined.
            assert after == "shard-new", (key, before[key], after)
    # Expected moves: K/(n+1).  Allow 2x slack for vnode placement
    # noise; the hard bound is that unrelated shards never exchange.
    assert moved <= 2 * len(keys) / (n_shards + 1)
    assert moved > 0


@given(shard_counts, seeds)
@settings(max_examples=25, deadline=None)
def test_leave_minimal_remap(n_shards, seed):
    """Removing a shard: only its keys move, onto surviving shards."""
    keys = _keys(4000, tag=seed)
    ring = ConsistentHashRing(_shards(n_shards + 1))
    victim = f"shard-{n_shards}"
    before = {key: ring.owner(key) for key in keys}
    ring.remove(victim)
    for key in keys:
        after = ring.owner(key)
        if before[key] == victim:
            assert after != victim
        else:
            # Keys of surviving shards never move at all.
            assert after == before[key], (key, before[key], after)


@given(shard_counts)
@settings(max_examples=10, deadline=None)
def test_join_then_leave_roundtrip(n_shards):
    """add(x); remove(x) restores the exact prior ownership map."""
    keys = _keys(2000)
    ring = ConsistentHashRing(_shards(n_shards))
    before = {key: ring.owner(key) for key in keys}
    ring.add("shard-transient")
    ring.remove("shard-transient")
    assert {key: ring.owner(key) for key in keys} == before


@given(shard_counts, seeds)
@settings(max_examples=25, deadline=None)
def test_preference_distinct_and_owner_first(n_shards, seed):
    ring = ConsistentHashRing(_shards(n_shards))
    for key in _keys(50, tag=seed):
        preference = ring.preference(key, n_shards)
        assert preference[0] == ring.owner(key)
        assert len(preference) == len(set(preference)) == n_shards


def test_placement_is_process_independent():
    """Ownership depends only on the id strings (blake2b, not hash())."""
    ring = ConsistentHashRing(_shards(3))
    # Pinned placements; a change here means every deployed fleet
    # would reshuffle its users on upgrade.
    assert ring.owner("user-0") == "shard-1"
    assert ring.owner("user-1") == "shard-0"
    assert ring.owner("user-12345") == "shard-0"


def test_membership_and_validation():
    ring = ConsistentHashRing(["a", "b"])
    assert len(ring) == 2 and "a" in ring and ring.shard_ids == ["a", "b"]
    with pytest.raises(ConfigurationError):
        ring.add("a")
    with pytest.raises(ConfigurationError):
        ring.remove("missing")
    with pytest.raises(ConfigurationError):
        ring.add("")
    with pytest.raises(ConfigurationError):
        ConsistentHashRing(vnodes=0)
    ring.remove("a")
    ring.remove("b")
    with pytest.raises(ConfigurationError):
        ring.owner("user-1")
    with pytest.raises(ConfigurationError):
        ring.preference("user-1", 1)