"""Property-based tests on serving-layer scheduling invariants.

The micro-batch scheduler and bounded queue are modelled with plain
data (integers as requests), driven by hypothesis-generated traces:

* FIFO order is preserved within every batch-compatibility class, for
  any interleaving of offers and dispatch opportunities.
* A request is dispatched exactly once — never duplicated across
  batches, never both refused and dispatched.
* Shed counts match the queue-bound arithmetic of the offered trace.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServiceOverloadError
from repro.serve.batching import BatchingConfig, MicroBatchScheduler
from repro.serve.queue import BackpressurePolicy, BoundedRequestQueue

# One trace event: which compatibility class the next request belongs
# to (None = a dispatch opportunity instead of an arrival).
trace_events = st.lists(
    st.one_of(st.sampled_from(["a", "b", "c"]), st.none()),
    min_size=1,
    max_size=60,
)


@given(
    trace_events,
    st.integers(min_value=1, max_value=7),
    st.floats(min_value=0.0, max_value=0.5),
)
@settings(max_examples=80, deadline=None)
def test_scheduler_fifo_and_exactly_once(events, batch_size, max_wait):
    scheduler = MicroBatchScheduler(
        BatchingConfig(max_batch_size=batch_size, max_wait_s=max_wait)
    )
    offered = {"a": [], "b": [], "c": []}
    dispatched = {"a": [], "b": [], "c": []}
    now = 0.0
    next_id = 0
    for event in events:
        now += 0.1
        if event is None:
            for batch in scheduler.ready_batches(now):
                assert len(batch) <= batch_size
                dispatched[batch.key].extend(batch.entries)
        else:
            scheduler.offer(next_id, key=event, now=now)
            offered[event].append(next_id)
            next_id += 1
    for batch in scheduler.flush():
        assert len(batch) <= batch_size
        dispatched[batch.key].extend(batch.entries)
    # Exactly-once, FIFO within class: the dispatch order per class is
    # literally the offer order, with nothing lost or duplicated.
    assert dispatched == offered


@given(trace_events, st.integers(min_value=1, max_value=7))
@settings(max_examples=80, deadline=None)
def test_scheduler_max_wait_zero_never_leaves_backlog(events, batch_size):
    scheduler = MicroBatchScheduler(
        BatchingConfig(max_batch_size=batch_size, max_wait_s=0.0)
    )
    now = 0.0
    for event in events:
        now += 0.1
        if event is not None:
            scheduler.offer(object(), key=event, now=now)
        scheduler.ready_batches(now)
        # With a zero formation deadline every dispatch opportunity
        # clears the backlog completely.
        assert scheduler.n_pending == 0


# One queue op: True = put, False = get.
queue_ops = st.lists(st.booleans(), min_size=1, max_size=80)


@given(queue_ops, st.integers(min_value=1, max_value=5))
@settings(max_examples=80, deadline=None)
def test_shed_counts_match_queue_bound_arithmetic(ops, capacity):
    queue = BoundedRequestQueue(
        capacity=capacity, policy=BackpressurePolicy.SHED_OLDEST
    )
    expected_shed = 0
    depth = 0
    next_id = 0
    admitted = []
    shed_entries = []
    popped = []
    for is_put in ops:
        if is_put:
            if depth == capacity:
                expected_shed += 1
            else:
                depth += 1
            shed = queue.put(next_id)
            admitted.append(next_id)
            if shed is not None:
                shed_entries.append(shed)
            next_id += 1
        else:
            entry = queue.get(timeout_s=0)
            if entry is not None:
                popped.append(entry)
                depth -= 1
    assert queue.n_shed == expected_shed == len(shed_entries)
    assert queue.depth == depth
    # Every admitted entry lands in exactly one bucket: shed, popped,
    # or still queued — no loss, no duplication.
    remaining = queue.drain()
    accounted = sorted(shed_entries + popped + remaining)
    assert accounted == admitted


@given(queue_ops, st.integers(min_value=1, max_value=5))
@settings(max_examples=80, deadline=None)
def test_rejected_entries_never_served(ops, capacity):
    queue = BoundedRequestQueue(
        capacity=capacity, policy=BackpressurePolicy.REJECT
    )
    rejected = []
    admitted = []
    popped = []
    next_id = 0
    for is_put in ops:
        if is_put:
            try:
                queue.put(next_id)
                admitted.append(next_id)
            except ServiceOverloadError:
                rejected.append(next_id)
            next_id += 1
        else:
            entry = queue.get(timeout_s=0)
            if entry is not None:
                popped.append(entry)
    remaining = queue.drain()
    # No entry is both rejected and (eventually) served.
    assert not set(rejected) & set(popped + remaining)
    assert sorted(popped + remaining) == admitted
    assert queue.n_rejected == len(rejected)
