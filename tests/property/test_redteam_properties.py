"""Property-based tests on red-team optimizer invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.redteam.campaign import AttackerRun
from repro.redteam.optimizers import make_optimizer
from repro.redteam.space import AttackSpace

SPACE = AttackSpace(n_bands=3, n_slices=2)

targets = st.lists(
    st.floats(min_value=-8.0, max_value=8.0),
    min_size=SPACE.dimension,
    max_size=SPACE.dimension,
)


def _best_so_far_series(mode, seed, target, generations):
    """Per-generation best-so-far under a smooth synthetic objective."""
    goal = np.asarray(target)
    optimizer = make_optimizer(mode, SPACE, seed=seed)
    series = []
    for _ in range(generations):
        candidates = optimizer.ask()
        optimizer.tell(
            candidates,
            [-float(np.sum((c - goal) ** 2)) for c in candidates],
        )
        series.append(optimizer.best_score)
    return series


@given(
    st.sampled_from(["cmaes", "random"]),
    st.integers(min_value=0, max_value=10**6),
    targets,
)
@settings(max_examples=25, deadline=None)
def test_best_so_far_is_monotone_non_decreasing(mode, seed, target):
    series = _best_so_far_series(mode, seed, target, generations=5)
    assert all(
        later >= earlier
        for earlier, later in zip(series, series[1:])
    )


@given(
    st.sampled_from(["cmaes", "random"]),
    st.integers(min_value=0, max_value=10**6),
    targets,
)
@settings(max_examples=25, deadline=None)
def test_best_score_matches_best_queried_candidate(mode, seed, target):
    goal = np.asarray(target)
    optimizer = make_optimizer(mode, SPACE, seed=seed)
    queried = []
    for _ in range(4):
        candidates = optimizer.ask()
        scores = [
            -float(np.sum((c - goal) ** 2)) for c in candidates
        ]
        queried.extend(scores)
        optimizer.tell(candidates, scores)
    assert optimizer.best_score == max(queried)


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=25, deadline=None)
def test_zero_budget_degenerates_to_static_attack(seed):
    """An attacker with no queries is exactly the static attack (θ=0)."""
    run = AttackerRun(member=0, mode="cmaes", history=[], queries_used=0)
    theta, score = run.best_at_budget(SPACE, 0)
    assert score is None
    assert np.array_equal(theta, SPACE.identity())
    # And θ = 0 leaves any waveform bitwise untouched.
    waveform = np.random.default_rng(seed).normal(size=512)
    assert np.array_equal(
        SPACE.apply(waveform, 16_000.0, theta), waveform
    )


@given(
    st.lists(
        st.floats(min_value=-1.0, max_value=1.0),
        min_size=1,
        max_size=30,
    ),
    st.integers(min_value=0, max_value=40),
)
@settings(max_examples=50, deadline=None)
def test_best_at_budget_is_prefix_maximum(scores, budget):
    history = [
        (SPACE.random(np.random.default_rng(i)).tolist(), score)
        for i, score in enumerate(scores)
    ]
    run = AttackerRun(
        member=0, mode="random", history=history,
        queries_used=len(history),
    )
    theta, best = run.best_at_budget(SPACE, budget)
    prefix = scores[:budget]
    if not prefix:
        assert best is None
        assert np.array_equal(theta, SPACE.identity())
    else:
        assert best == max(prefix)
        winner = history[prefix.index(max(prefix))][0]
        assert np.array_equal(theta, np.asarray(winner))
