"""Property-based tests on neural-substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.losses import softmax, softmax_cross_entropy
from repro.nn.lstm import LSTMLayer

logits_arrays = arrays(
    np.float64,
    st.tuples(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=2, max_value=5),
    ),
    elements=st.floats(min_value=-30.0, max_value=30.0,
                       allow_nan=False),
)


@given(logits_arrays)
@settings(max_examples=80, deadline=None)
def test_softmax_is_a_distribution(logits):
    probs = softmax(logits)
    assert np.all(probs >= 0)
    np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-9)


@given(logits_arrays, st.integers(min_value=0, max_value=10**6))
@settings(max_examples=60, deadline=None)
def test_cross_entropy_nonnegative_and_grad_sums_to_zero(logits, seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, logits.shape[-1], size=logits.shape[0])
    loss, grad = softmax_cross_entropy(logits, labels)
    assert loss >= -1e-9
    # Per-row softmax gradient sums to zero.
    np.testing.assert_allclose(
        grad.sum(axis=-1), 0.0, atol=1e-9
    )


@given(logits_arrays, st.floats(min_value=-50.0, max_value=50.0))
@settings(max_examples=60, deadline=None)
def test_softmax_shift_invariance(logits, shift):
    np.testing.assert_allclose(
        softmax(logits), softmax(logits + shift), rtol=1e-7, atol=1e-9
    )


@given(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=30, deadline=None)
def test_lstm_output_bounded(batch, time, dim, seed):
    # LSTM hidden states are tanh-gated: |h| <= 1 elementwise.
    rng = np.random.default_rng(seed)
    layer = LSTMLayer(dim, 4, rng=seed)
    x = 100.0 * rng.standard_normal((batch, time, dim))
    hidden = layer.forward(x)
    assert np.all(np.abs(hidden) <= 1.0 + 1e-12)
    assert np.all(np.isfinite(hidden))
