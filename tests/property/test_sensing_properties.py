"""Property-based tests on the cross-domain sensing chain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acoustics.spl import db_to_gain
from repro.dsp.generators import tone, white_noise
from repro.sensing.accelerometer import Accelerometer, AccelerometerSpec
from repro.sensing.conduction import ConductionPath
from repro.sensing.cross_domain import CrossDomainSensor

AUDIO_RATE = 16_000.0

_SENSOR = CrossDomainSensor()
_QUIET_PATH = ConductionPath(response_jitter_db=0.0)


@given(
    st.floats(min_value=50.0, max_value=7800.0),
    st.floats(min_value=0.01, max_value=0.5),
    st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=40, deadline=None)
def test_conversion_finite_for_any_tone(frequency, amplitude, seed):
    audio = tone(frequency, 0.5, AUDIO_RATE, amplitude=amplitude)
    vibration = _SENSOR.convert(audio, AUDIO_RATE, rng=seed)
    assert np.all(np.isfinite(vibration))
    assert vibration.size == 100


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_conversion_length_invariant(seed):
    rng = np.random.default_rng(seed)
    n_seconds = float(rng.uniform(0.3, 3.0))
    audio = white_noise(n_seconds, AUDIO_RATE, amplitude=0.05,
                        rng=seed)
    vibration = _SENSOR.convert(audio, AUDIO_RATE, rng=seed)
    # Strided decimation keeps ceil(n / 80) samples.
    assert vibration.size == (audio.size + 79) // 80


@given(st.floats(min_value=10.0, max_value=7900.0))
@settings(max_examples=60, deadline=None)
def test_conduction_response_positive(frequency):
    response = _QUIET_PATH.response(np.array([frequency]))[0]
    assert response > 0.0
    assert np.isfinite(response)


@given(
    st.floats(min_value=-20.0, max_value=20.0),
    st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=30, deadline=None)
def test_noise_injection_monotone_in_level(gain_db, seed):
    """More low-frequency drive never yields *less* injected noise."""
    spec = AccelerometerSpec(
        base_noise_rms=0.0, dc_sensitivity=0.0, lsb=0.0
    )
    accel = Accelerometer(spec)
    field = np.zeros(16_000)
    quiet_drive = 0.02 * tone(200.0, 1.0, AUDIO_RATE)
    loud_drive = quiet_drive * db_to_gain(abs(gain_db))
    quiet_noise = np.std(
        accel.sense(field, AUDIO_RATE, quiet_drive, rng=seed)
    )
    loud_noise = np.std(
        accel.sense(field, AUDIO_RATE, loud_drive, rng=seed)
    )
    assert loud_noise >= quiet_noise * 0.99
