"""Property-based tests on synthesis and acoustics invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acoustics.materials import GLASS_WINDOW, WOODEN_DOOR
from repro.acoustics.spl import scale_to_spl, spl_of
from repro.dsp.generators import tone
from repro.phonemes.inventory import phoneme_symbols
from repro.phonemes.speaker import generate_speakers
from repro.phonemes.synthesis import PhonemeSynthesizer

_SYNTH = PhonemeSynthesizer()
_SPEAKERS = generate_speakers(4, rng=7)
_SOUNDING = phoneme_symbols(sounding_only=True)


@given(
    st.sampled_from(_SOUNDING),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=60, deadline=None)
def test_synthesis_always_finite_and_bounded(symbol, speaker_index,
                                             seed):
    sound = _SYNTH.synthesize(
        symbol, _SPEAKERS[speaker_index], rng=seed
    )
    assert np.all(np.isfinite(sound))
    assert np.max(np.abs(sound)) < 10.0


@given(
    st.sampled_from(_SOUNDING),
    st.floats(min_value=0.05, max_value=0.5),
)
@settings(max_examples=40, deadline=None)
def test_synthesis_duration_respected(symbol, duration):
    sound = _SYNTH.synthesize(
        symbol, _SPEAKERS[0], duration_s=duration, rng=0
    )
    assert sound.size == max(int(round(duration * 16_000)), 8)


@given(st.floats(min_value=40.0, max_value=95.0))
@settings(max_examples=40, deadline=None)
def test_spl_roundtrip(target):
    signal = tone(440.0, 0.25, 16_000.0)
    assert spl_of(scale_to_spl(signal, target)) == (
        __import__("pytest").approx(target, abs=1e-6)
    )


@given(
    st.sampled_from([GLASS_WINDOW, WOODEN_DOOR]),
    st.floats(min_value=20.0, max_value=7900.0),
)
@settings(max_examples=80, deadline=None)
def test_barrier_gain_never_amplifies(material, frequency):
    gain = material.transmission_gain(np.array([frequency]))[0]
    assert 0.0 < gain < 1.0
