"""Property-based tests on corpus/utterance invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phonemes.corpus import SyntheticCorpus
from repro.phonemes.inventory import phoneme_symbols

_CORPUS = SyntheticCorpus(n_speakers=3, seed=77)
_SOUNDING = list(phoneme_symbols(sounding_only=True))

sequences = st.lists(
    st.sampled_from(_SOUNDING), min_size=1, max_size=8
)


@given(sequences, st.integers(min_value=0, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_alignment_is_sorted_and_positive(sequence, seed):
    utterance = _CORPUS.utterance(sequence, rng=seed)
    previous_end = 0.0
    for interval in utterance.alignment:
        assert interval.start_s >= previous_end - 1e-9
        assert interval.duration_s > 0
        previous_end = interval.end_s


@given(sequences, st.integers(min_value=0, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_alignment_spans_whole_waveform(sequence, seed):
    utterance = _CORPUS.utterance(sequence, rng=seed)
    assert utterance.alignment[0].start_s == 0.0
    assert abs(
        utterance.alignment[-1].end_s - utterance.duration_s
    ) < 1e-6


@given(sequences, st.integers(min_value=0, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_alignment_symbol_order_preserved(sequence, seed):
    utterance = _CORPUS.utterance(sequence, rng=seed)
    assert [i.symbol for i in utterance.alignment] == list(sequence)


@given(sequences, st.integers(min_value=0, max_value=10**6))
@settings(max_examples=20, deadline=None)
def test_waveform_finite_and_bounded(sequence, seed):
    utterance = _CORPUS.utterance(sequence, rng=seed)
    assert np.all(np.isfinite(utterance.waveform))
    assert np.max(np.abs(utterance.waveform)) < 10.0
