"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    CalibrationError,
    ConfigurationError,
    ModelError,
    ProtocolError,
    ReproError,
    SignalError,
    SynthesisError,
)

ALL_ERRORS = [
    ConfigurationError,
    SignalError,
    SynthesisError,
    ModelError,
    ProtocolError,
    CalibrationError,
]


@pytest.mark.parametrize("error_cls", ALL_ERRORS)
def test_all_errors_derive_from_repro_error(error_cls):
    assert issubclass(error_cls, ReproError)


@pytest.mark.parametrize("error_cls", ALL_ERRORS)
def test_errors_are_catchable_as_repro_error(error_cls):
    with pytest.raises(ReproError):
        raise error_cls("boom")


def test_repro_error_is_an_exception():
    assert issubclass(ReproError, Exception)
