"""Experiment-runner plumbing (fast paths + one tiny sweep)."""

import pytest

from repro.attacks.base import AttackKind
from repro.errors import ConfigurationError
from repro.eval.campaign import (
    CampaignConfig,
    DetectorBank,
    FULL_SYSTEM,
)
from repro.eval.experiment import run_attack_experiment, run_factor_sweep
from repro.eval.participants import ParticipantPool
from repro.eval.rooms import ROOM_A


class TestDetectorBank:
    def test_full_bank_names(self):
        bank = DetectorBank(segmenter=None)
        assert bank.detector_names == [
            "full_system", "vibration_baseline", "audio_baseline"
        ]

    def test_no_baselines(self):
        bank = DetectorBank(segmenter=None, include_baselines=False)
        assert bank.detector_names == ["full_system"]
        assert bank.vibration_baseline is None


class TestFactorSweepValidation:
    def test_unknown_factor(self):
        with pytest.raises(ConfigurationError):
            run_factor_sweep(
                "humidity", [1.0], [AttackKind.REPLAY],
                pool=ParticipantPool(n_participants=2, seed=0),
                detectors=DetectorBank(
                    segmenter=None, include_baselines=False
                ),
            )

    def test_material_sweep_type_checked(self):
        with pytest.raises(ConfigurationError):
            run_factor_sweep(
                "barrier_material", ["glass"], [AttackKind.REPLAY],
                pool=ParticipantPool(n_participants=2, seed=0),
                detectors=DetectorBank(
                    segmenter=None, include_baselines=False
                ),
            )

    def test_room_sweep_type_checked(self):
        with pytest.raises(ConfigurationError):
            run_factor_sweep(
                "room", ["Room A"], [AttackKind.REPLAY],
                pool=ParticipantPool(n_participants=2, seed=0),
                detectors=DetectorBank(
                    segmenter=None, include_baselines=False
                ),
            )


@pytest.mark.slow
class TestTinyExperiment:
    def test_attack_experiment_roc_accessible(self):
        config = CampaignConfig(
            n_commands_per_participant=2, n_attacks_per_kind=2, seed=1
        )
        result = run_attack_experiment(
            AttackKind.REPLAY,
            rooms=[ROOM_A],
            config=config,
            pool=ParticipantPool(n_participants=4, seed=2),
            detectors=DetectorBank(
                segmenter=None, include_baselines=False
            ),
        )
        assert FULL_SYSTEM in result.metrics
        fdr, tdr = result.roc(FULL_SYSTEM)
        assert fdr.shape == tdr.shape
        assert result.metrics[FULL_SYSTEM].auc >= 0.5

    def test_tiny_volume_sweep(self):
        config = CampaignConfig(
            n_commands_per_participant=1, n_attacks_per_kind=1, seed=3
        )
        results = run_factor_sweep(
            "attack_spl",
            [75.0],
            [AttackKind.REPLAY],
            base_config=config,
            rooms=[ROOM_A],
            pool=ParticipantPool(n_participants=2, seed=4),
            detectors=DetectorBank(
                segmenter=None, include_baselines=False
            ),
        )
        assert "75dB" in results
        metrics = results["75dB"][AttackKind.REPLAY][FULL_SYSTEM]
        assert 0.0 <= metrics.eer <= 1.0
