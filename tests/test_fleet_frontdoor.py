"""Front door: routing, profiles, SLO shedding, deadlines, lifecycle."""

import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fleet import (
    FleetConfig,
    FleetFrontDoor,
    FleetRequest,
    SimulatedEngineConfig,
    SloConfig,
    derive_user_profile,
    simulated_shard_factory,
)
from repro.serve.request import RequestStatus

AUDIO = np.zeros(160)


def make_fleet(
    n_shards=2,
    service_time_s=0.002,
    queue_capacity=64,
    slo=None,
    **config_kwargs,
):
    slo = slo or SloConfig()
    factory = simulated_shard_factory(
        engine_config=SimulatedEngineConfig(
            n_workers=1,
            service_time_s=service_time_s,
            queue_capacity=queue_capacity,
        ),
        slo=slo,
    )
    config_kwargs.setdefault("autoscale_interval_s", 0.0)
    return FleetFrontDoor(
        factory,
        FleetConfig(n_shards=n_shards, slo=slo, **config_kwargs),
    )


def request(user, rid="r0", **kwargs):
    return FleetRequest(
        user_id=user,
        va_audio=AUDIO,
        wearable_audio=AUDIO,
        request_id=rid,
        **kwargs,
    )


class TestRouting:
    def test_same_user_same_shard(self):
        with make_fleet(n_shards=4) as fleet:
            shards = {
                fleet.verify(request("user-7", f"r{i}")).shard_id
                for i in range(6)
            }
        assert len(shards) == 1

    def test_users_spread_across_shards(self):
        with make_fleet(n_shards=4) as fleet:
            shards = {
                fleet.verify(request(f"user-{i}", f"r{i}")).shard_id
                for i in range(40)
            }
        assert len(shards) == 4

    def test_routing_matches_ring_owner(self):
        with make_fleet(n_shards=4) as fleet:
            for i in range(10):
                user = f"user-{i}"
                response = fleet.verify(request(user, f"r{i}"))
                assert response.shard_id == fleet.ring.owner(user)
                assert not response.rerouted

    def test_personal_threshold_applied(self):
        with make_fleet() as fleet:
            response = fleet.verify(request("user-3"))
        profile = derive_user_profile("user-3")
        assert response.profile_threshold == profile.threshold
        assert response.verdict.is_attack == (
            response.verdict.score < profile.threshold
        )

    def test_profiles_can_be_disabled(self):
        with make_fleet(apply_profiles=False) as fleet:
            response = fleet.verify(request("user-3"))
        assert response.profile_threshold is None
        assert response.verdict.is_attack is None


class TestShedding:
    def test_slo_breach_sheds_low_priority_only(self):
        slo = SloConfig(
            target_p95_s=0.0001, min_samples=5, retry_after_s=0.5
        )
        with make_fleet(slo=slo, queue_capacity=256) as fleet:
            # Warm the owner shard's window past min_samples with
            # latencies that necessarily breach the 0.1 ms target
            # (protected priority so the warm-up itself is not shed).
            for i in range(8):
                fleet.verify(
                    request("user-1", f"warm-{i}", priority=1)
                )
            shed = fleet.verify(request("user-1", "low"))
            assert shed.status is RequestStatus.SHED
            assert shed.retry_after_s == 0.5
            assert shed.verdict is None
            protected = fleet.verify(
                request("user-1", "high", priority=1)
            )
            assert protected.status is RequestStatus.SERVED
            metrics = fleet.metrics()
        assert metrics.n_shed_slo == 1
        assert metrics.n_unresolved == 0


class TestDeadlines:
    def test_fleet_deadline_times_out(self):
        with make_fleet(
            service_time_s=0.05,
            queue_capacity=64,
            deadline_grace_s=0.0,
        ) as fleet:
            user = "user-1"
            owner = fleet.ring.owner(user)
            pads = [
                pad
                for pad in (f"pad-{i}" for i in range(200))
                if fleet.ring.owner(pad) == owner
            ][:3]
            blockers = [
                fleet.submit_threadsafe(request(pad, f"pad-{j}"))
                for j, pad in enumerate(pads)
            ]
            late = fleet.verify(
                request(user, "late", deadline_s=0.001)
            )
            for blocker in blockers:
                blocker.result()
        # Either the queue wait already blew the budget (FAILED) or
        # the engine answered degraded within the grace; with zero
        # grace and 50 ms service time, FAILED is the expected path.
        assert late.status is RequestStatus.FAILED
        assert "deadline" in late.error

    def test_default_deadline_from_config(self):
        with make_fleet(
            service_time_s=0.001, default_deadline_s=5.0
        ) as fleet:
            response = fleet.verify(request("user-1"))
        assert response.status is RequestStatus.SERVED


class TestLifecycle:
    def test_stop_is_idempotent_and_concurrent_safe(self):
        fleet = make_fleet()
        fleet.start()
        fleet.verify(request("user-1"))
        errors = []

        def stopper():
            try:
                fleet.stop()
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=stopper) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        fleet.stop()  # third-party no-op

    def test_submit_after_stop_refused(self):
        fleet = make_fleet()
        fleet.start()
        fleet.stop()
        with pytest.raises(ConfigurationError):
            fleet.submit_threadsafe(request("user-1"))

    def test_submit_before_start_refused(self):
        with pytest.raises(ConfigurationError):
            make_fleet().submit_threadsafe(request("user-1"))

    def test_stop_drains_inflight_requests(self):
        fleet = make_fleet(service_time_s=0.01, queue_capacity=256)
        fleet.start()
        futures = [
            fleet.submit_threadsafe(request(f"user-{i}", f"r{i}"))
            for i in range(30)
        ]
        fleet.stop()
        statuses = [f.result(timeout=5).status for f in futures]
        assert all(
            status is RequestStatus.SERVED for status in statuses
        )
        assert fleet.metrics().n_unresolved == 0

    def test_start_is_idempotent(self):
        fleet = make_fleet()
        fleet.start()
        fleet.start()
        assert len(fleet.shards) == 2
        fleet.stop()


class TestAutoscaling:
    def test_autoscaler_grows_overloaded_shard(self):
        from repro.fleet import Autoscaler, AutoscalerConfig

        slo = SloConfig(target_p95_s=0.005, min_samples=5)
        factory = simulated_shard_factory(
            engine_config=SimulatedEngineConfig(
                n_workers=1,
                service_time_s=0.01,
                queue_capacity=512,
            ),
            slo=slo,
            autoscaler_factory=lambda: Autoscaler(
                AutoscalerConfig(cooldown_s=0.0, max_workers=4), slo
            ),
        )
        fleet = FleetFrontDoor(
            factory,
            FleetConfig(
                n_shards=1, slo=slo, autoscale_interval_s=0.02
            ),
        )
        with fleet:
            futures = [
                fleet.submit_threadsafe(
                    request(f"user-{i}", f"r{i}", priority=1)
                )
                for i in range(60)
            ]
            for future in futures:
                future.result(timeout=10)
            shard = fleet.shards["shard-0"]
            assert shard.engine.n_workers > 1
            assert len(shard.scale_events) >= 1


class TestValidation:
    def test_invalid_fleet_configs(self):
        for kwargs in (
            {"n_shards": 0},
            {"failover": -1},
            {"default_deadline_s": 0.0},
            {"deadline_grace_s": -0.1},
            {"autoscale_interval_s": -1.0},
        ):
            with pytest.raises(ConfigurationError):
                FleetConfig(**kwargs)

    def test_invalid_requests(self):
        with pytest.raises(ConfigurationError):
            FleetRequest(
                user_id="", va_audio=AUDIO, wearable_audio=AUDIO
            )
        with pytest.raises(ConfigurationError):
            FleetRequest(
                user_id="u",
                va_audio=AUDIO,
                wearable_audio=AUDIO,
                deadline_s=0.0,
            )

    def test_request_seed_defaults_deterministically(self):
        a = request("user-1", "r1").resolved_seed()
        b = request("user-1", "r1").resolved_seed()
        c = request("user-1", "r2").resolved_seed()
        assert a == b != c
        assert request("u", seed=5).resolved_seed() == 5
