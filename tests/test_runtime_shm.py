"""Shared-memory transport: encode/decode round-trips, lease
lifecycle, graceful pickle fallback, and end-to-end process-pool use."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.runtime import (
    PROCESS,
    FallbackPolicy,
    Runtime,
    ShmRef,
    ShmTransport,
    decode_payload,
    shm_available,
)
from repro.serve.request import VerificationRequest

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable"
)

BIG = 64 * 1024 // 8  # elements: exactly DEFAULT_MIN_BYTES of float64


def big_array(seed=0, n=BIG):
    return np.random.default_rng(seed).normal(size=n)


def _checksum(payload):
    """Worker-side probe: decode happened transparently."""
    return float(np.sum(payload["x"])) + payload["tag"]


@dataclass(frozen=True)
class FrozenHolder:
    label: str
    data: np.ndarray


class TestEncodeDecode:
    def test_large_array_round_trips(self):
        transport = ShmTransport()
        array = big_array(1)
        encoded, lease = transport.encode(array)
        try:
            assert isinstance(encoded, ShmRef)
            assert len(lease) == 1
            decoded = decode_payload(encoded)
            np.testing.assert_array_equal(decoded, array)
            # The decoded copy is private: the segment can go away.
        finally:
            lease.release()

    def test_small_array_passes_through(self):
        transport = ShmTransport()
        array = np.arange(16, dtype=np.float64)
        encoded, lease = transport.encode(array)
        assert encoded is array
        assert len(lease) == 0
        lease.release()

    def test_nested_containers(self):
        transport = ShmTransport()
        payload = {
            "arrays": [big_array(2), big_array(3)],
            "pair": (big_array(4), "label"),
            "scalar": 7,
        }
        encoded, lease = transport.encode(payload)
        try:
            assert isinstance(encoded["arrays"][0], ShmRef)
            assert isinstance(encoded["pair"][0], ShmRef)
            assert encoded["scalar"] == 7
            decoded = decode_payload(encoded)
            np.testing.assert_array_equal(
                decoded["arrays"][1], payload["arrays"][1]
            )
            np.testing.assert_array_equal(
                decoded["pair"][0], payload["pair"][0]
            )
        finally:
            lease.release()

    def test_dataclass_with_post_init_round_trips(self):
        # VerificationRequest.__post_init__ coerces arrays; the encoder
        # must bypass it (copy + setattr) or a ShmRef would be coerced.
        transport = ShmTransport()
        request = VerificationRequest(
            va_audio=big_array(5),
            wearable_audio=big_array(6),
            seed=5,
            request_id="req-shm",
        )
        encoded, lease = transport.encode(request)
        try:
            assert isinstance(encoded.va_audio, ShmRef)
            assert encoded.request_id == "req-shm"
            decoded = decode_payload(encoded)
            np.testing.assert_array_equal(
                decoded.va_audio, request.va_audio
            )
            np.testing.assert_array_equal(
                decoded.wearable_audio, request.wearable_audio
            )
        finally:
            lease.release()

    def test_frozen_dataclass_round_trips(self):
        transport = ShmTransport()
        holder = FrozenHolder(label="a", data=big_array(7))
        encoded, lease = transport.encode(holder)
        try:
            assert isinstance(encoded.data, ShmRef)
            decoded = decode_payload(encoded)
            np.testing.assert_array_equal(decoded.data, holder.data)
        finally:
            lease.release()

    def test_plain_payload_is_identity(self):
        payload = {"a": [1, 2], "b": "text"}
        assert decode_payload(payload) is payload


class TestLease:
    def test_release_unlinks_segment(self):
        transport = ShmTransport()
        encoded, lease = transport.encode(big_array(8))
        name = encoded.name
        lease.release()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_release_is_idempotent(self):
        transport = ShmTransport()
        _, lease = transport.encode(big_array(9))
        lease.release()
        lease.release()  # second call must be a no-op
        assert len(lease) == 0


class TestFallback:
    def test_disabled_transport_is_pure_pickle(self):
        transport = ShmTransport(enabled=False)
        array = big_array(10)
        encoded, lease = transport.encode(array)
        assert encoded is array
        assert len(lease) == 0
        assert transport.available is False

    def test_min_bytes_threshold_respected(self):
        transport = ShmTransport(min_bytes=10 * 1024 * 1024)
        encoded, lease = transport.encode(big_array(11))
        assert not isinstance(encoded, ShmRef)
        assert len(lease) == 0


class TestRuntimeIntegration:
    def test_process_pool_round_trip(self):
        runtime = Runtime(
            PROCESS,
            n_workers=2,
            fallback=FallbackPolicy(ladder=(PROCESS, "inline")),
            transport=ShmTransport(),
        )
        try:
            payloads = [
                {"x": big_array(20 + index), "tag": index}
                for index in range(4)
            ]
            results = runtime.map_units(_checksum, payloads)
            expected = [
                float(np.sum(payload["x"])) + payload["tag"]
                for payload in payloads
            ]
            assert results == pytest.approx(expected)
        finally:
            runtime.shutdown()

    def test_no_leaked_segments_after_map(self, tmp_path):
        import glob

        before = set(glob.glob("/dev/shm/psm_*"))
        runtime = Runtime(
            PROCESS,
            n_workers=2,
            fallback=FallbackPolicy(ladder=(PROCESS, "inline")),
            transport=ShmTransport(),
        )
        try:
            payloads = [
                {"x": big_array(30 + index), "tag": 0}
                for index in range(3)
            ]
            runtime.map_units(_checksum, payloads)
        finally:
            runtime.shutdown()
        after = set(glob.glob("/dev/shm/psm_*"))
        assert after - before == set()
