"""Speaker models."""

import pytest

from repro.errors import ConfigurationError
from repro.phonemes.speaker import SpeakerProfile, generate_speakers


def test_generate_alternates_genders():
    speakers = generate_speakers(6, rng=0)
    genders = [speaker.gender for speaker in speakers]
    assert genders == ["male", "female"] * 3


def test_generated_f0_ranges():
    speakers = generate_speakers(20, rng=1)
    for speaker in speakers:
        if speaker.gender == "male":
            assert 95.0 <= speaker.f0_hz <= 145.0
        else:
            assert 175.0 <= speaker.f0_hz <= 245.0


def test_female_formant_scale_higher():
    speakers = generate_speakers(20, rng=2)
    male_scale = max(
        s.formant_scale for s in speakers if s.gender == "male"
    )
    female_scale = min(
        s.formant_scale for s in speakers if s.gender == "female"
    )
    assert female_scale > male_scale


def test_speaker_ids_unique():
    speakers = generate_speakers(10, rng=3)
    ids = {speaker.speaker_id for speaker in speakers}
    assert len(ids) == 10


def test_generation_deterministic():
    a = generate_speakers(4, rng=9)
    b = generate_speakers(4, rng=9)
    assert a == b


def test_zero_speakers_rejected():
    with pytest.raises(ConfigurationError):
        generate_speakers(0)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"gender": "other"},
        {"f0_hz": 20.0},
        {"f0_hz": 900.0},
        {"formant_scale": 0.2},
        {"dialect_region": 0},
        {"dialect_region": 9},
    ],
)
def test_invalid_profiles_rejected(kwargs):
    base = dict(
        speaker_id="X", gender="male", f0_hz=120.0, formant_scale=1.0
    )
    base.update(kwargs)
    with pytest.raises(ConfigurationError):
        SpeakerProfile(**base)
