"""Bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.eval.stats import (
    BootstrapEstimate,
    bootstrap_auc,
    bootstrap_eer,
    bootstrap_metric,
)


@pytest.fixture()
def scores(rng):
    legit = rng.normal(0.7, 0.1, 60)
    attack = rng.normal(0.3, 0.1, 60)
    return legit, attack


def test_auc_ci_contains_point(scores):
    estimate = bootstrap_auc(*scores, n_bootstrap=200, rng=0)
    assert estimate.low <= estimate.value <= estimate.high
    assert 0.0 <= estimate.low <= estimate.high <= 1.0


def test_eer_ci_contains_point(scores):
    estimate = bootstrap_eer(*scores, n_bootstrap=200, rng=1)
    assert estimate.low <= estimate.value <= estimate.high


def test_more_data_tighter_interval(rng):
    def width(n):
        legit = rng.normal(0.65, 0.1, n)
        attack = rng.normal(0.35, 0.1, n)
        estimate = bootstrap_auc(
            legit, attack, n_bootstrap=200, rng=2
        )
        return estimate.high - estimate.low

    assert width(400) < width(20)


def test_separable_scores_give_degenerate_interval(rng):
    legit = rng.normal(10.0, 0.1, 40)
    attack = rng.normal(-10.0, 0.1, 40)
    estimate = bootstrap_auc(legit, attack, n_bootstrap=100, rng=3)
    assert estimate.value == 1.0
    assert estimate.low == 1.0


def test_deterministic_given_seed(scores):
    a = bootstrap_auc(*scores, n_bootstrap=100, rng=4)
    b = bootstrap_auc(*scores, n_bootstrap=100, rng=4)
    assert a == b


def test_report_string(scores):
    estimate = bootstrap_auc(*scores, n_bootstrap=50, rng=5)
    assert "CI" in str(estimate)
    assert isinstance(estimate, BootstrapEstimate)


def test_custom_metric(scores):
    legit, attack = scores
    estimate = bootstrap_metric(
        legit, attack,
        lambda l, a: float(np.mean(l) - np.mean(a)),
        n_bootstrap=100, rng=6,
    )
    assert estimate.value == pytest.approx(0.4, abs=0.1)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n_bootstrap": 0},
        {"confidence": 0.0},
        {"confidence": 1.0},
    ],
)
def test_invalid_parameters(scores, kwargs):
    with pytest.raises(CalibrationError):
        bootstrap_auc(*scores, **kwargs)


def test_empty_scores_rejected():
    with pytest.raises(CalibrationError):
        bootstrap_auc([], [0.1])
