"""Shared quantile helper: edge cases and bitwise np.percentile parity."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve.metrics import LatencySummary
from repro.utils.stats import (
    REPORTED_PERCENTILES,
    drop_nan_samples,
    percentile,
    percentile_values,
    quantile_values,
)


class TestQuantileValues:
    def test_empty_samples_yield_nans(self):
        values = quantile_values([], [0.5, 0.95])
        assert values.shape == (2,)
        assert np.isnan(values).all()

    def test_nan_samples_are_dropped(self, caplog):
        clean = [0.1, 0.2, 0.3, 0.4, 0.5]
        poisoned = [0.1, math.nan, 0.2, 0.3, math.nan, 0.4, 0.5]
        with caplog.at_level("WARNING", logger="repro.utils.stats"):
            ours = quantile_values(poisoned, [0.5, 0.95, 0.99])
        theirs = quantile_values(clean, [0.5, 0.95, 0.99])
        assert (ours == theirs).all()
        assert not np.isnan(ours).any()
        assert "dropped 2 NaN sample(s) of 7" in caplog.text

    def test_all_nan_behaves_like_empty(self):
        values = quantile_values([math.nan, math.nan], [0.5, 0.95])
        assert values.shape == (2,)
        assert np.isnan(values).all()

    def test_infinities_are_kept(self):
        # Only NaNs are dropped; an infinite sample is a real (if
        # degenerate) value and still shifts the median.
        kept, dropped = drop_nan_samples([0.1, 0.2, math.inf])
        assert dropped == 0
        assert kept.size == 3
        median = quantile_values([0.1, 0.2, 0.3, math.inf], [0.5])
        assert median[0] == 0.25

    def test_drop_nan_samples_counts(self):
        kept, dropped = drop_nan_samples([1.0, math.nan, 2.0])
        assert dropped == 1
        assert (kept == np.array([1.0, 2.0])).all()
        kept, dropped = drop_nan_samples([1.0, 2.0])
        assert dropped == 0
        assert kept.size == 2

    def test_single_sample_is_every_quantile(self):
        values = quantile_values([3.25], [0.0, 0.5, 0.95, 1.0])
        assert (values == 3.25).all()

    def test_matches_numpy_quantile_bitwise(self):
        rng = np.random.default_rng(7)
        samples = rng.normal(size=101)
        fractions = [0.05, 0.5, 0.95, 0.99]
        ours = quantile_values(samples, fractions)
        theirs = np.quantile(samples, fractions)
        assert (ours == theirs).all()

    def test_rejects_fractions_outside_unit_interval(self):
        with pytest.raises(ConfigurationError):
            quantile_values([1.0, 2.0], [1.5])
        with pytest.raises(ConfigurationError):
            quantile_values([1.0, 2.0], [-0.01])


class TestPercentileValues:
    def test_matches_numpy_percentile_bitwise(self):
        rng = np.random.default_rng(11)
        samples = rng.exponential(size=73)
        ours = percentile_values(samples, REPORTED_PERCENTILES)
        theirs = np.percentile(samples, REPORTED_PERCENTILES)
        assert (ours == theirs).all()

    def test_scalar_helper(self):
        assert percentile([1.0, 2.0, 3.0], 50.0) == 2.0
        assert math.isnan(percentile([], 50.0))

    def test_single_sample(self):
        p50, p95, p99 = percentile_values([0.125], REPORTED_PERCENTILES)
        assert p50 == p95 == p99 == 0.125


class TestLatencySummaryIntegration:
    def test_empty_returns_none(self):
        assert LatencySummary.from_samples([]) is None

    def test_single_sample_summary(self):
        summary = LatencySummary.from_samples([0.25])
        assert summary.count == 1
        assert summary.p50_s == summary.p95_s == summary.p99_s == 0.25

    def test_matches_legacy_numpy_percentile(self):
        rng = np.random.default_rng(3)
        samples = list(rng.uniform(0.001, 0.2, size=50))
        summary = LatencySummary.from_samples(samples)
        p50, p95, p99 = np.percentile(
            np.asarray(samples, dtype=np.float64), (50, 95, 99)
        )
        assert summary.p50_s == float(p50)
        assert summary.p95_s == float(p95)
        assert summary.p99_s == float(p99)
