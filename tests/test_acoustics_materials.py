"""Barrier materials and transmission curves."""

import numpy as np
import pytest

from repro.acoustics.materials import (
    BRICK_WALL,
    BarrierMaterial,
    GLASS_WALL,
    GLASS_WINDOW,
    MATERIALS,
    WOODEN_DOOR,
    get_material,
)
from repro.errors import ConfigurationError


def test_registry_contents():
    assert set(MATERIALS) == {
        "glass_window", "glass_wall", "wooden_door", "brick_wall",
        "meta_speech_notch", "meta_hf_notch",
    }


def test_get_material_unknown():
    with pytest.raises(ConfigurationError):
        get_material("cardboard")


@pytest.mark.parametrize(
    "material", [GLASS_WINDOW, GLASS_WALL, WOODEN_DOOR]
)
def test_high_frequencies_attenuate_more(material):
    low = material.transmission_loss_db(np.array([200.0]))[0]
    high = material.transmission_loss_db(np.array([3000.0]))[0]
    assert high > low + 10.0


def test_brick_blocks_all_frequencies():
    losses = BRICK_WALL.transmission_loss_db(
        np.array([100.0, 500.0, 2000.0])
    )
    assert np.all(losses > 30.0)


def test_wood_more_transmissive_than_glass_in_low_band():
    freqs = np.array([100.0, 200.0, 400.0])
    wood = WOODEN_DOOR.transmission_loss_db(freqs)
    glass = GLASS_WINDOW.transmission_loss_db(freqs)
    assert np.all(wood < glass)


def test_loss_is_monotonic_in_frequency():
    freqs = np.linspace(50, 6000, 200)
    losses = GLASS_WINDOW.transmission_loss_db(freqs)
    assert np.all(np.diff(losses) >= -1e-9)


def test_transmission_gain_matches_loss():
    freqs = np.array([100.0, 1000.0])
    gain = GLASS_WINDOW.transmission_gain(freqs)
    loss = GLASS_WINDOW.transmission_loss_db(freqs)
    np.testing.assert_allclose(gain, 10 ** (-loss / 20), rtol=1e-12)


def test_paper_alpha_coefficients_recorded():
    assert GLASS_WINDOW.alpha_low == pytest.approx(0.10)
    assert GLASS_WINDOW.alpha_high == pytest.approx(0.02)
    assert WOODEN_DOOR.alpha_low == pytest.approx(0.14)
    assert WOODEN_DOOR.alpha_high == pytest.approx(0.04)


def test_invalid_material_rejected():
    with pytest.raises(ConfigurationError):
        BarrierMaterial(
            name="bad", alpha_low=0.1, alpha_high=0.1,
            loss_low_db=-5.0, loss_high_db=10.0,
        )
