"""TDR/FDR/ROC/AUC/EER metrics."""

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.eval.metrics import (
    auc_from_scores,
    eer_from_scores,
    evaluate_scores,
    roc_curve,
)


def test_perfect_separation():
    legit = [0.8, 0.9, 0.85]
    attack = [0.1, 0.2, 0.15]
    assert auc_from_scores(legit, attack) == 1.0
    eer, threshold = eer_from_scores(legit, attack)
    assert eer == 0.0
    assert 0.2 < threshold < 0.8


def test_no_separation():
    scores = [0.5] * 10
    assert auc_from_scores(scores, scores) == pytest.approx(0.5)


def test_inverted_separation():
    legit = [0.1, 0.2]
    attack = [0.8, 0.9]
    assert auc_from_scores(legit, attack) == 0.0


def test_auc_matches_pairwise_probability(rng):
    legit = rng.normal(0.7, 0.1, 50)
    attack = rng.normal(0.3, 0.2, 60)
    auc = auc_from_scores(legit, attack)
    pairwise = np.mean(
        [a < l for a in attack for l in legit]
    )
    assert auc == pytest.approx(pairwise, abs=1e-9)


def test_eer_overlapping_distributions(rng):
    legit = rng.normal(0.6, 0.1, 400)
    attack = rng.normal(0.4, 0.1, 400)
    eer, threshold = eer_from_scores(legit, attack)
    # d' = 2sigma -> EER = Phi(-1) ~ 15.9%.
    assert eer == pytest.approx(0.159, abs=0.04)
    assert threshold == pytest.approx(0.5, abs=0.05)


def test_roc_curve_monotone(rng):
    legit = rng.normal(0.6, 0.1, 100)
    attack = rng.normal(0.4, 0.1, 100)
    thresholds, fdr, tdr = roc_curve(legit, attack)
    assert np.all(np.diff(fdr) >= 0)
    assert np.all(np.diff(tdr) >= 0)
    assert fdr[0] == 0.0 and tdr[-1] == 1.0


def test_roc_endpoints():
    thresholds, fdr, tdr = roc_curve([0.9], [0.1])
    assert fdr[0] == 0.0
    assert fdr[-1] == 1.0
    assert tdr[-1] == 1.0


def test_evaluate_scores_summary(rng):
    legit = rng.normal(0.7, 0.05, 30)
    attack = rng.normal(0.2, 0.05, 30)
    metrics = evaluate_scores(legit, attack)
    assert metrics.auc > 0.99
    assert metrics.eer < 0.05
    assert metrics.n_legit == 30
    assert metrics.n_attack == 30
    assert "AUC" in str(metrics)


def test_empty_scores_rejected():
    with pytest.raises(CalibrationError):
        auc_from_scores([], [0.5])
    with pytest.raises(CalibrationError):
        eer_from_scores([0.5], [])


def test_non_finite_rejected():
    with pytest.raises(CalibrationError):
        auc_from_scores([np.nan], [0.5])


def test_eer_threshold_classifies_at_equal_rates(rng):
    legit = rng.normal(0.65, 0.1, 300)
    attack = rng.normal(0.35, 0.1, 300)
    eer, threshold = eer_from_scores(legit, attack)
    fdr = float((legit < threshold).mean())
    fnr = float((attack >= threshold).mean())
    assert abs(fdr - fnr) < 0.05
