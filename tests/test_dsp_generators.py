"""Test-signal generators."""

import numpy as np
import pytest

from repro.dsp.generators import (
    linear_chirp,
    pink_noise,
    silence,
    tone,
    white_noise,
)
from repro.dsp.spectrum import band_energy, fft_magnitude
from repro.errors import ConfigurationError

RATE = 8000.0


def test_silence_is_zero():
    signal = silence(0.5, RATE)
    assert signal.size == 4000
    assert np.all(signal == 0.0)


def test_tone_frequency():
    signal = tone(440.0, 1.0, RATE)
    freqs, mags = fft_magnitude(signal, RATE)
    assert freqs[np.argmax(mags)] == pytest.approx(440.0, abs=2.0)


def test_tone_amplitude():
    signal = tone(100.0, 1.0, RATE, amplitude=0.25)
    assert np.max(np.abs(signal)) == pytest.approx(0.25, rel=0.01)


def test_chirp_sweeps_band():
    signal = linear_chirp(500.0, 2500.0, 1.0, RATE)
    inside = band_energy(signal, RATE, 450.0, 2600.0)
    outside = band_energy(signal, RATE, 3000.0, 3900.0)
    assert inside > 50 * outside


def test_chirp_starts_at_start_frequency():
    signal = linear_chirp(100.0, 1000.0, 2.0, RATE)
    head = signal[: int(0.1 * RATE)]
    freqs, mags = fft_magnitude(head, RATE)
    assert freqs[np.argmax(mags)] < 300.0


def test_white_noise_statistics():
    signal = white_noise(2.0, RATE, amplitude=0.5, rng=3)
    assert np.std(signal) == pytest.approx(0.5, rel=0.05)
    assert abs(np.mean(signal)) < 0.02


def test_white_noise_reproducible():
    np.testing.assert_array_equal(
        white_noise(0.1, RATE, rng=9), white_noise(0.1, RATE, rng=9)
    )


def test_pink_noise_slopes_down():
    signal = pink_noise(4.0, RATE, amplitude=1.0, rng=5)
    low = band_energy(signal, RATE, 20.0, 200.0)
    high = band_energy(signal, RATE, 2000.0, 3900.0)
    assert low > 2.0 * high


def test_pink_noise_rms_calibrated():
    signal = pink_noise(2.0, RATE, amplitude=0.3, rng=6)
    assert np.sqrt(np.mean(signal**2)) == pytest.approx(0.3, rel=0.02)


@pytest.mark.parametrize("duration", [0.0, -1.0])
def test_invalid_durations(duration):
    with pytest.raises(Exception):
        tone(100.0, duration, RATE)
