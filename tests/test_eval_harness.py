"""Rooms, participants, reporting, and a miniature campaign."""

import numpy as np
import pytest

from repro.attacks.base import AttackKind
from repro.eval.campaign import (
    AUDIO_BASELINE,
    CampaignConfig,
    DetectorBank,
    FULL_SYSTEM,
    ScoreSet,
    VIBRATION_BASELINE,
    collect_scores,
)
from repro.eval.participants import ParticipantPool
from repro.eval.reporting import (
    format_roc_summary,
    format_series,
    format_table,
    sparkline,
)
from repro.eval.rooms import ROOM_A, ROOM_B, ROOM_C, ROOM_D, ROOMS
from repro.errors import ConfigurationError


class TestRooms:
    def test_four_rooms(self):
        assert len(ROOMS) == 4

    def test_paper_dimensions(self):
        assert (ROOM_A.width_m, ROOM_A.length_m) == (7.0, 6.0)
        assert (ROOM_B.width_m, ROOM_B.length_m) == (7.0, 7.0)
        assert (ROOM_C.width_m, ROOM_C.length_m) == (6.0, 4.0)
        assert (ROOM_D.width_m, ROOM_D.length_m) == (5.0, 3.0)

    def test_barrier_materials(self):
        assert "glass" in ROOM_A.barrier.name
        assert "wood" in ROOM_B.barrier.name
        assert "wood" in ROOM_C.barrier.name
        assert "glass" in ROOM_D.barrier.name


class TestParticipants:
    def test_pool_size(self):
        pool = ParticipantPool(n_participants=20, seed=1)
        assert len(pool.speakers) == 20

    def test_room_split_matches_paper(self):
        pool = ParticipantPool(n_participants=20, seed=1)
        assignments = pool.room_assignments()
        assert len(assignments["Room A"]) == 10
        assert assignments["Room A"] == assignments["Room B"]
        assert len(assignments["Room C"]) == 5
        assert len(assignments["Room D"]) == 5

    def test_adversaries_exclude_victim(self):
        pool = ParticipantPool(n_participants=5, seed=2)
        victim = pool.speakers[0]
        adversaries = pool.adversaries_for(victim)
        assert len(adversaries) == 4
        assert victim not in adversaries

    def test_too_small_pool(self):
        with pytest.raises(ConfigurationError):
            ParticipantPool(n_participants=1)


class TestReporting:
    def test_format_table(self):
        text = format_table(
            ["a", "b"], [[1, 2], ["xx", "yyy"]], title="T"
        )
        assert "T" in text
        assert "xx" in text
        assert text.count("\n") == 4

    def test_format_series(self):
        text = format_series("x", "y", [1, 2], [0.5, 0.25])
        assert "0.500" in text

    def test_sparkline_length(self):
        line = sparkline(np.linspace(0, 1, 100), width=20)
        assert len(line) == 20

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_format_roc_summary(self):
        from repro.eval.metrics import evaluate_scores

        metrics = evaluate_scores([0.9, 0.8], [0.1, 0.2])
        text = format_roc_summary("demo", {"full": metrics})
        assert "AUC" in text and "full" in text


class TestScoreSet:
    def test_add_and_merge(self):
        a = ScoreSet()
        a.add_legit({"d": 0.9})
        a.add_attack(AttackKind.REPLAY, {"d": 0.1})
        b = ScoreSet()
        b.add_legit({"d": 0.8})
        a.merge(b)
        assert a.legit["d"] == [0.9, 0.8]
        assert a.attacks[AttackKind.REPLAY]["d"] == [0.1]


@pytest.mark.slow
class TestMiniCampaign:
    def test_campaign_produces_separating_scores(self):
        pool = ParticipantPool(n_participants=4, seed=3)
        detectors = DetectorBank(segmenter=None)
        config = CampaignConfig(
            n_commands_per_participant=2, n_attacks_per_kind=2, seed=4
        )
        scores = collect_scores(
            [ROOM_A], pool, detectors, [AttackKind.REPLAY], config
        )
        assert len(scores.legit[FULL_SYSTEM]) == 4
        assert len(
            scores.attacks[AttackKind.REPLAY][FULL_SYSTEM]
        ) == 4
        assert set(scores.legit) == {
            FULL_SYSTEM, VIBRATION_BASELINE, AUDIO_BASELINE
        }
        legit_mean = np.mean(scores.legit[FULL_SYSTEM])
        attack_mean = np.mean(
            scores.attacks[AttackKind.REPLAY][FULL_SYSTEM]
        )
        assert legit_mean > attack_mean
