"""IIR/FIR filter behaviour."""

import numpy as np
import pytest

from repro.dsp.filters import (
    butter_bandpass,
    butter_highpass,
    butter_lowpass,
    fir_lowpass,
)
from repro.dsp.generators import tone
from repro.errors import ConfigurationError

RATE = 1000.0


def _band_rms(signal):
    return float(np.sqrt(np.mean(signal**2)))


def test_highpass_removes_low_tone():
    low = tone(10.0, 1.0, RATE)
    filtered = butter_highpass(low, RATE, 50.0)
    assert _band_rms(filtered) < 0.05 * _band_rms(low)


def test_highpass_keeps_high_tone():
    high = tone(200.0, 1.0, RATE)
    filtered = butter_highpass(high, RATE, 50.0)
    assert _band_rms(filtered) > 0.9 * _band_rms(high)


def test_lowpass_removes_high_tone():
    high = tone(200.0, 1.0, RATE)
    filtered = butter_lowpass(high, RATE, 50.0)
    # Allow for filtfilt edge transients on the finite signal.
    assert _band_rms(filtered) < 0.1 * _band_rms(high)


def test_lowpass_keeps_low_tone():
    low = tone(10.0, 1.0, RATE)
    filtered = butter_lowpass(low, RATE, 50.0)
    assert _band_rms(filtered) > 0.9 * _band_rms(low)


def test_bandpass_selects_band():
    mixture = (
        tone(10.0, 1.0, RATE)
        + tone(100.0, 1.0, RATE)
        + tone(400.0, 1.0, RATE)
    )
    filtered = butter_bandpass(mixture, RATE, 50.0, 200.0)
    in_band = butter_bandpass(tone(100.0, 1.0, RATE), RATE, 50.0, 200.0)
    # Only the 100 Hz component should survive.
    assert _band_rms(filtered) == pytest.approx(
        _band_rms(in_band), rel=0.1
    )


def test_bandpass_rejects_inverted_band():
    with pytest.raises(ConfigurationError):
        butter_bandpass(tone(100.0, 0.1, RATE), RATE, 200.0, 50.0)


@pytest.mark.parametrize("cutoff", [0.0, -10.0, 500.0, 600.0])
def test_invalid_cutoffs_rejected(cutoff):
    with pytest.raises(ConfigurationError):
        butter_lowpass(tone(100.0, 0.1, RATE), RATE, cutoff)


def test_filters_handle_short_signals():
    short = np.ones(5)
    out = butter_highpass(short, RATE, 50.0)
    assert out.shape == short.shape
    assert np.all(np.isfinite(out))


def test_fir_lowpass_attenuates_high():
    high = tone(300.0, 1.0, RATE)
    filtered = fir_lowpass(high, RATE, 50.0)
    assert _band_rms(filtered) < 0.1 * _band_rms(high)


def test_fir_rejects_even_taps():
    with pytest.raises(ConfigurationError):
        fir_lowpass(tone(100.0, 0.1, RATE), RATE, 50.0, n_taps=10)
