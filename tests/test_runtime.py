"""Runtime layer: executors, fallback ladder, retries, determinism."""

import pickle

import pytest

from repro.attacks.base import AttackKind
from repro.errors import ConfigurationError, WorkerError
from repro.eval.campaign import CampaignConfig, DetectorBank
from repro.eval.participants import ParticipantPool
from repro.eval.rooms import ROOM_A
from repro.eval.runner import CampaignRunner
from repro.phonemes.corpus import SyntheticCorpus
from repro.runtime import (
    EXECUTOR_KINDS,
    FallbackPolicy,
    RetryPolicy,
    Runtime,
    capture_stage_events,
)


def _double(x):
    return x * 2


def _boom(x):
    raise ValueError(f"bad unit {x}")


def _die_in_worker(payload):
    """Kill the hosting process iff it is a pool child, else succeed."""
    import os

    parent_pid, x = payload
    if os.getpid() != parent_pid:
        os._exit(1)
    return x + 1


class TestPolicies:
    def test_default_ladder(self):
        assert FallbackPolicy().ladder == ("process", "thread", "inline")

    def test_rungs_from_kind(self):
        policy = FallbackPolicy()
        assert policy.rungs("process") == ("process", "thread", "inline")
        assert policy.rungs("thread") == ("thread", "inline")
        assert policy.rungs("inline") == ("inline",)

    def test_kind_absent_from_ladder_runs_solo(self):
        policy = FallbackPolicy(ladder=("process", "inline"))
        assert policy.rungs("thread") == ("thread",)

    def test_invalid_ladders_rejected(self):
        with pytest.raises(ConfigurationError):
            FallbackPolicy(ladder=())
        with pytest.raises(ConfigurationError):
            FallbackPolicy(ladder=("process", "process"))
        with pytest.raises(ConfigurationError):
            FallbackPolicy(ladder=("process", "fiber"))

    def test_retry_policy_bounds(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        policy = RetryPolicy(max_attempts=3, retry_on=(ValueError,))
        assert policy.should_retry(ValueError("x"), 1)
        assert policy.should_retry(ValueError("x"), 2)
        assert not policy.should_retry(ValueError("x"), 3)
        assert not policy.should_retry(KeyError("x"), 1)


class TestExecutorsBasic:
    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_map_preserves_submission_order(self, kind):
        runtime = Runtime(kind, n_workers=2)
        try:
            assert runtime.map_units(_double, list(range(8))) == [
                2 * x for x in range(8)
            ]
            assert runtime.realized_kind == kind
            assert not runtime.fell_back
        finally:
            runtime.shutdown()

    def test_submit_returns_future(self):
        with Runtime("inline") as runtime:
            assert runtime.submit(_double, 21).result() == 42

    def test_initializer_runs_inline(self):
        seen = []
        with Runtime("inline", initializer=seen.append, initargs=(7,)):
            pass
        assert seen == [7]

    def test_invalid_kind_and_workers(self):
        with pytest.raises(ConfigurationError):
            Runtime("fiber")
        with pytest.raises(ConfigurationError):
            Runtime("thread", n_workers=0)


class TestErrorPropagation:
    def test_inline_and_thread_raise_original(self):
        for kind in ("inline", "thread"):
            runtime = Runtime(kind, n_workers=2)
            try:
                with pytest.raises(ValueError):
                    runtime.map_units(_boom, [1])
            finally:
                runtime.shutdown()

    def test_process_wraps_errors_picklable(self):
        runtime = Runtime(
            "process",
            n_workers=2,
            fallback=FallbackPolicy(ladder=("process",)),
        )
        try:
            with pytest.raises(WorkerError) as excinfo:
                runtime.map_units(_boom, [5])
        finally:
            runtime.shutdown()
        error = excinfo.value
        assert error.error_type == "ValueError"
        assert "bad unit 5" in error.message
        clone = pickle.loads(pickle.dumps(error))
        assert clone.error_type == error.error_type
        assert clone.message == error.message

    def test_worker_error_round_trip(self):
        original = WorkerError.from_exception(KeyError("missing"))
        clone = pickle.loads(pickle.dumps(original))
        assert clone.error_type == "KeyError"
        assert isinstance(clone, WorkerError)
        # Idempotent wrapping.
        assert WorkerError.from_exception(original) is original


class TestRetry:
    def test_flaky_unit_retried_up_to_cap(self):
        attempts = []

        def flaky(x):
            attempts.append(x)
            if len(attempts) < 3:
                raise ValueError("transient")
            return x

        runtime = Runtime(
            "inline", retry=RetryPolicy(max_attempts=3)
        )
        assert runtime.map_units(flaky, [9]) == [9]
        assert len(attempts) == 3

    def test_exhausted_retries_raise(self):
        runtime = Runtime(
            "inline", retry=RetryPolicy(max_attempts=2)
        )
        with pytest.raises(ValueError):
            runtime.map_units(_boom, [1])


class TestFallbackLadder:
    def test_process_spawn_failure_demotes_to_thread(self, monkeypatch):
        import repro.runtime.executor as executor_module

        def broken(*args, **kwargs):
            raise OSError("no processes available")

        monkeypatch.setattr(
            executor_module, "ProcessPoolExecutor", broken
        )
        runtime = Runtime("process", n_workers=2)
        try:
            with capture_stage_events() as captured:
                assert runtime.map_units(_double, [1, 2, 3]) == [2, 4, 6]
            assert runtime.realized_kind == "thread"
            assert runtime.fell_back
            assert runtime.fallbacks == ["thread"]
        finally:
            runtime.shutdown()
        fallbacks = [
            event for event in captured.events
            if event.scope == "runtime" and event.fallback == "thread"
        ]
        assert len(fallbacks) == 1
        assert fallbacks[0].error == "OSError"

    def test_full_ladder_process_to_thread_to_inline(self, monkeypatch):
        import repro.runtime.executor as executor_module

        def broken(*args, **kwargs):
            raise OSError("pool unavailable")

        monkeypatch.setattr(
            executor_module, "ProcessPoolExecutor", broken
        )
        monkeypatch.setattr(
            executor_module, "ThreadPoolExecutor", broken
        )
        runtime = Runtime("process", n_workers=2)
        try:
            assert runtime.map_units(_double, [4, 5]) == [8, 10]
            assert runtime.realized_kind == "inline"
            assert runtime.fallbacks == ["thread", "inline"]
        finally:
            runtime.shutdown()

    def test_exhausted_ladder_reraises(self, monkeypatch):
        import repro.runtime.executor as executor_module

        def broken(*args, **kwargs):
            raise OSError("pool unavailable")

        monkeypatch.setattr(
            executor_module, "ProcessPoolExecutor", broken
        )
        runtime = Runtime(
            "process",
            n_workers=2,
            fallback=FallbackPolicy(ladder=("process",)),
        )
        with pytest.raises(OSError):
            runtime.map_units(_double, [1])

    def test_midrun_worker_death_demotes(self):
        # The pool comes up fine, then every child dies on its first
        # unit (BrokenProcessPool mid-run); the ladder keeps the batch
        # alive by finishing the remaining units inline, where the
        # same payloads succeed.
        import os

        runtime = Runtime(
            "process",
            n_workers=2,
            fallback=FallbackPolicy(ladder=("process", "inline")),
        )
        parent = os.getpid()
        try:
            result = runtime.map_units(
                _die_in_worker, [(parent, 1), (parent, 2), (parent, 3)]
            )
            assert result == [2, 3, 4]
            assert runtime.realized_kind == "inline"
            assert runtime.fell_back
        finally:
            runtime.shutdown()


@pytest.fixture(scope="module")
def tiny_campaign():
    """A two-unit campaign small enough to run under every executor."""
    pool = ParticipantPool(n_participants=4, seed=11)
    detectors = DetectorBank(segmenter=None, include_baselines=False)
    config = CampaignConfig(
        n_commands_per_participant=1, n_attacks_per_kind=1, seed=12
    )
    corpus = SyntheticCorpus(speakers=pool.speakers, seed=config.seed)
    return pool, detectors, config, corpus


def _campaign_digest(result):
    import hashlib

    payload = repr(
        (sorted(result.scores.legit.items()),
         sorted(
             (kind.value, scores)
             for kind, scores in result.scores.attacks.items()
         ))
    ).encode()
    return hashlib.sha256(payload).hexdigest()


class TestCrossExecutorDeterminism:
    def test_identical_digests_across_all_runtimes(self, tiny_campaign):
        pool, detectors, config, corpus = tiny_campaign
        digests = {}
        modes = {}
        serial = CampaignRunner(n_workers=1).run(
            [ROOM_A], pool, detectors, [AttackKind.REPLAY], config,
            corpus=corpus,
        )
        digests["serial"] = _campaign_digest(serial)
        modes["serial"] = serial.stats.mode
        for kind in ("inline", "thread", "process"):
            result = CampaignRunner(n_workers=2, executor=kind).run(
                [ROOM_A], pool, detectors, [AttackKind.REPLAY], config,
                corpus=corpus,
            )
            digests[kind] = _campaign_digest(result)
            modes[kind] = result.stats.mode
        assert len(set(digests.values())) == 1, digests
        assert modes["serial"] == "serial"
        assert modes["inline"] == "serial"
        assert modes["thread"] == "thread-pool"
        assert modes["process"] == "process-pool"
