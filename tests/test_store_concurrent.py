"""One-trainer-many-loaders: processes racing on an empty store.

The acceptance property for the artifact store's locking protocol: N
worker processes cold-starting against the same empty store perform
exactly one training run between them, and every process ends up with
bitwise-identical weights.
"""

import hashlib
import multiprocessing

import pytest

#: Tiny training recipe: slow enough that the losers of the lock race
#: are still waiting when the winner publishes, cheap enough for CI.
RECIPE = dict(n_speakers=2, n_per_phoneme=2, epochs=2)
SEED = 20260806


def _race_worker(store_dir, barrier, queue):
    """Load-or-train against the shared store; report (created, digest)."""
    from repro.store import ModelRegistry
    from repro.store.adapters import encode_segmenter

    registry = ModelRegistry(store_dir)
    barrier.wait(timeout=60)
    model, created = registry.segmenter(seed=SEED, **RECIPE)
    digest = hashlib.sha256(encode_segmenter(model)).hexdigest()
    queue.put((created, digest))


def _spawn_context():
    # Spawned (not forked) children: nothing — no memo, no counters —
    # leaks from the parent, so the store is the only shared state.
    try:
        return multiprocessing.get_context("spawn")
    except ValueError:  # pragma: no cover - spawn always exists on CI
        pytest.skip("spawn start method unavailable")


@pytest.mark.slow
def test_concurrent_cold_start_trains_exactly_once(tmp_path):
    context = _spawn_context()
    n_workers = 3
    barrier = context.Barrier(n_workers)
    queue = context.Queue()
    store_dir = str(tmp_path / "store")
    workers = [
        context.Process(
            target=_race_worker, args=(store_dir, barrier, queue)
        )
        for _ in range(n_workers)
    ]
    for worker in workers:
        worker.start()
    try:
        results = [queue.get(timeout=300) for _ in range(n_workers)]
    finally:
        for worker in workers:
            worker.join(timeout=60)
            if worker.is_alive():  # pragma: no cover - hung worker
                worker.terminate()

    created_flags = [created for created, _ in results]
    digests = {digest for _, digest in results}
    assert sum(created_flags) == 1, (
        f"exactly one process must train, got {created_flags}"
    )
    assert len(digests) == 1, "all processes must hold identical weights"


@pytest.mark.slow
def test_second_wave_of_processes_only_loads(tmp_path):
    """Processes started after publication never train."""
    from repro.store import ModelRegistry

    store_dir = str(tmp_path / "store")
    ModelRegistry(store_dir).segmenter(seed=SEED, **RECIPE)

    context = _spawn_context()
    barrier = context.Barrier(2)
    queue = context.Queue()
    workers = [
        context.Process(
            target=_race_worker, args=(store_dir, barrier, queue)
        )
        for _ in range(2)
    ]
    for worker in workers:
        worker.start()
    try:
        results = [queue.get(timeout=300) for _ in range(2)]
    finally:
        for worker in workers:
            worker.join(timeout=60)
            if worker.is_alive():  # pragma: no cover - hung worker
                worker.terminate()
    assert [created for created, _ in results] == [False, False]
