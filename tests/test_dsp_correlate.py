"""Cross-correlation alignment and 2-D correlation."""

import numpy as np
import pytest

from repro.dsp.correlate import (
    align_by_cross_correlation,
    correlation_2d,
    cross_correlation_delay,
    normalized_cross_correlation,
)
from repro.errors import SignalError


def _burst(rng, n=400, offset=100):
    signal = np.zeros(n)
    signal[offset : offset + 100] = rng.standard_normal(100)
    return signal


def test_delay_estimation_positive(rng):
    # Wearable missing head samples: its content leads.
    va = _burst(rng)
    wearable = va[40:]
    delay = cross_correlation_delay(va, wearable, max_lag=80)
    assert delay == 40


def test_delay_estimation_negative(rng):
    va = _burst(rng)
    wearable = np.concatenate([np.zeros(25), va])
    delay = cross_correlation_delay(va, wearable, max_lag=80)
    assert delay == -25


def test_delay_zero_for_identical(rng):
    va = _burst(rng)
    assert cross_correlation_delay(va, va.copy(), max_lag=50) == 0


def test_align_restores_overlap(rng):
    va = _burst(rng)
    wearable = va[40:]
    va_a, wearable_a, delay = align_by_cross_correlation(
        va, wearable, max_lag=80
    )
    assert delay == 40
    assert va_a.size == wearable_a.size
    np.testing.assert_allclose(va_a, wearable_a)


def test_align_noisy_copies(rng):
    va = _burst(rng)
    wearable = va[30:] + 0.05 * rng.standard_normal(va.size - 30)
    va_a, wearable_a, _ = align_by_cross_correlation(va, wearable, 60)
    corr = np.corrcoef(va_a, wearable_a)[0, 1]
    assert corr > 0.9


def test_normalized_cross_correlation_bounds(rng):
    a = rng.standard_normal(200)
    lags, values = normalized_cross_correlation(a, a, max_lag=20)
    assert lags.size == 41
    assert values.max() == pytest.approx(1.0, abs=1e-9)
    assert np.all(values <= 1.0 + 1e-9)


def test_max_lag_negative_rejected(rng):
    with pytest.raises(SignalError):
        normalized_cross_correlation(
            rng.standard_normal(10), rng.standard_normal(10), -1
        )


def test_correlation_2d_identity(rng):
    matrix = rng.standard_normal((8, 12))
    assert correlation_2d(matrix, matrix) == pytest.approx(1.0)


def test_correlation_2d_sign_flip(rng):
    matrix = rng.standard_normal((8, 12))
    assert correlation_2d(matrix, -matrix) == pytest.approx(-1.0)


def test_correlation_2d_independent_near_zero(rng):
    a = rng.standard_normal((30, 30))
    b = rng.standard_normal((30, 30))
    assert abs(correlation_2d(a, b)) < 0.15


def test_correlation_2d_crops_to_overlap(rng):
    a = rng.standard_normal((8, 12))
    b = np.pad(a, ((0, 2), (0, 3)))
    assert correlation_2d(a, b) == pytest.approx(1.0)


def test_correlation_2d_constant_input_is_zero():
    assert correlation_2d(np.ones((4, 4)), np.ones((4, 4))) == 0.0


def test_correlation_2d_scale_invariant(rng):
    a = rng.standard_normal((6, 6))
    assert correlation_2d(a, 3.5 * a + 2.0) == pytest.approx(1.0)


def test_empty_input_raises_signal_error():
    with pytest.raises(SignalError, match="reference"):
        normalized_cross_correlation(np.array([]), np.ones(8), max_lag=4)
    with pytest.raises(SignalError, match="other"):
        normalized_cross_correlation(np.ones(8), np.array([]), max_lag=4)


def test_delay_empty_input_names_argument():
    with pytest.raises(SignalError, match="va_signal"):
        cross_correlation_delay(np.array([]), np.ones(8), max_lag=4)
    with pytest.raises(SignalError, match="wearable_signal"):
        cross_correlation_delay(np.ones(8), np.array([]), max_lag=4)


def test_align_empty_input_raises_signal_error():
    with pytest.raises(SignalError):
        align_by_cross_correlation(np.array([]), np.ones(8), max_lag=4)
    with pytest.raises(SignalError):
        align_by_cross_correlation(np.ones(8), np.array([]), max_lag=4)


def test_align_single_sample_inputs():
    va_a, wearable_a, delay = align_by_cross_correlation(
        np.array([1.0]), np.array([1.0]), max_lag=4
    )
    assert delay == 0
    assert va_a.size == wearable_a.size == 1


def test_align_single_sample_against_long_signal(rng):
    long_signal = _burst(rng)
    va_a, wearable_a, _ = align_by_cross_correlation(
        long_signal, np.array([0.5]), max_lag=10
    )
    assert va_a.size == wearable_a.size == 1
