"""Vibration-domain feature extraction."""

import numpy as np
import pytest

from repro.core.features import FeatureConfig, VibrationFeatureExtractor
from repro.dsp.generators import tone, white_noise
from repro.dsp.stft import stft_frequencies
from repro.errors import ConfigurationError, SignalError

RATE = 200.0


def _vibration(seconds=2.0, rng=0):
    return tone(40.0, seconds, RATE, amplitude=0.01) + white_noise(
        seconds, RATE, amplitude=0.002, rng=rng
    )


def test_feature_shape():
    extractor = VibrationFeatureExtractor()
    features = extractor.extract(_vibration())
    # 33 bins minus the <=5 Hz crop (bins at 0, 3.125 Hz).
    freqs = stft_frequencies(64, RATE)
    expected_bins = int(np.sum(freqs > 5.0))
    assert features.shape[0] == expected_bins


def test_artifact_crop_removes_dc_rows():
    no_crop = VibrationFeatureExtractor(
        FeatureConfig(artifact_cutoff_hz=0.0, highpass_hz=0.0)
    )
    cropped = VibrationFeatureExtractor(
        FeatureConfig(artifact_cutoff_hz=5.0, highpass_hz=0.0)
    )
    vibration = _vibration()
    assert (
        cropped.extract(vibration).shape[0]
        < no_crop.extract(vibration).shape[0]
    )


def test_normalization_caps_at_zero_db():
    extractor = VibrationFeatureExtractor()
    features = extractor.extract(_vibration())
    assert features.max() == pytest.approx(0.0, abs=1e-9)


def test_log_floor_applied():
    config = FeatureConfig(log_floor_db=-35.0)
    extractor = VibrationFeatureExtractor(config)
    features = extractor.extract(_vibration())
    assert features.min() >= -35.0


def test_linear_mode():
    config = FeatureConfig(log_compress=False)
    extractor = VibrationFeatureExtractor(config)
    features = extractor.extract(_vibration())
    assert features.min() >= 0.0
    assert features.max() == pytest.approx(1.0)


def test_scale_invariance_of_normalized_features():
    extractor = VibrationFeatureExtractor(
        FeatureConfig(highpass_hz=0.0)
    )
    vibration = _vibration()
    a = extractor.extract(vibration)
    b = extractor.extract(10.0 * vibration)
    np.testing.assert_allclose(a, b, atol=1e-9)


def test_highpass_removes_body_motion_band():
    from repro.sensing.body_motion import body_motion_interference

    motion = body_motion_interference(800, RATE, intensity=0.05, rng=1)
    vibration = _vibration(4.0) + motion
    with_hp = VibrationFeatureExtractor(
        FeatureConfig(highpass_hz=5.0, artifact_cutoff_hz=0.0,
                      log_compress=False, normalize=False)
    ).extract(vibration)
    without_hp = VibrationFeatureExtractor(
        FeatureConfig(highpass_hz=0.0, artifact_cutoff_hz=0.0,
                      log_compress=False, normalize=False)
    ).extract(vibration)
    freqs = stft_frequencies(64, RATE)
    low_rows = freqs <= 4.0
    assert (
        with_hp[low_rows].sum() < 0.2 * without_hp[low_rows].sum()
    )


def test_too_short_signal_rejected():
    extractor = VibrationFeatureExtractor()
    with pytest.raises(SignalError):
        extractor.extract(np.zeros(10) + 0.01)


def test_invalid_configs():
    with pytest.raises(ConfigurationError):
        FeatureConfig(n_fft=0)
    with pytest.raises(ConfigurationError):
        FeatureConfig(log_floor_db=1.0)


class TestRelativeLogFloor:
    """Without normalization the log floor must track the peak."""

    def test_unnormalized_log_features_scale_invariant_pattern(self):
        config = FeatureConfig(normalize=False, highpass_hz=0.0)
        extractor = VibrationFeatureExtractor(config)
        vibration = _vibration()
        small = extractor.extract(vibration)
        large = extractor.extract(1000.0 * vibration)
        # Scaling the signal shifts every dB value (and the floor) by
        # the same constant; the floored spectro-temporal pattern is
        # preserved instead of being truncated by an absolute cutoff.
        shift = 10.0 * np.log10(1000.0**2)
        np.testing.assert_allclose(large, small + shift, rtol=0, atol=1e-6)

    def test_floor_depth_relative_to_peak(self):
        config = FeatureConfig(normalize=False, highpass_hz=0.0)
        extractor = VibrationFeatureExtractor(config)
        features = extractor.extract(1e-2 * _vibration())
        assert features.min() >= features.max() + config.log_floor_db - 1e-4
        # The floor actually engages (some bins sit on it).
        assert np.any(
            features <= features.max() + config.log_floor_db + 0.1
        )

    def test_normalized_path_unchanged(self):
        config = FeatureConfig(highpass_hz=0.0)
        extractor = VibrationFeatureExtractor(config)
        features = extractor.extract(_vibration())
        assert features.max() == pytest.approx(0.0, abs=1e-9)
        assert features.min() >= config.log_floor_db
