"""Losses, optimizer, model container, batching."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ModelError
from repro.nn.adam import Adam
from repro.nn.data import iterate_minibatches, pad_sequences
from repro.nn.losses import softmax, softmax_cross_entropy
from repro.nn.model import SequenceClassifier


class TestLosses:
    def test_softmax_sums_to_one(self, rng):
        logits = rng.standard_normal((3, 4, 5))
        probs = softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0)

    def test_softmax_stable_for_large_logits(self):
        probs = softmax(np.array([1000.0, 1000.0]))
        np.testing.assert_allclose(probs, [0.5, 0.5])

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0]])
        loss, grad = softmax_cross_entropy(logits, np.array([0]))
        assert loss == pytest.approx(0.0, abs=1e-6)
        np.testing.assert_allclose(grad, 0.0, atol=1e-6)

    def test_cross_entropy_gradient_check(self, rng):
        logits = rng.standard_normal((2, 3))
        labels = np.array([1, 2])
        _, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        logits_p = logits.copy()
        logits_p[0, 1] += eps
        loss_p, _ = softmax_cross_entropy(logits_p, labels)
        logits_p[0, 1] -= 2 * eps
        loss_m, _ = softmax_cross_entropy(logits_p, labels)
        numeric = (loss_p - loss_m) / (2 * eps)
        assert numeric == pytest.approx(grad[0, 1], rel=1e-5)

    def test_cross_entropy_shape_mismatch(self):
        with pytest.raises(ModelError):
            softmax_cross_entropy(np.zeros((2, 3)), np.zeros((3,),
                                                             dtype=int))


class TestAdam:
    def test_descends_quadratic(self):
        params = {"x": np.array([5.0])}
        adam = Adam(learning_rate=0.1)
        for _ in range(200):
            grads = {"x": 2 * params["x"]}
            adam.update(params, grads)
        assert abs(params["x"][0]) < 0.1

    def test_updates_in_place(self):
        params = {"x": np.ones(3)}
        reference = params["x"]
        Adam(learning_rate=0.1).update(params, {"x": np.ones(3)})
        assert params["x"] is reference

    def test_rejects_mismatched_keys(self):
        with pytest.raises(ConfigurationError):
            Adam().update({"a": np.ones(1)}, {"b": np.ones(1)})

    def test_rejects_bad_learning_rate(self):
        with pytest.raises(ConfigurationError):
            Adam(learning_rate=0.0)


class TestBatching:
    def test_pad_sequences_shapes(self):
        x, y, mask = pad_sequences(
            [np.ones((3, 2)), np.ones((5, 2))],
            [np.ones(3, dtype=int), np.ones(5, dtype=int)],
        )
        assert x.shape == (2, 5, 2)
        assert y.shape == (2, 5)
        assert mask[0].sum() == 3
        assert mask[1].sum() == 5

    def test_pad_rejects_length_mismatch(self):
        with pytest.raises(ModelError):
            pad_sequences([np.ones((3, 2))], [np.ones(4, dtype=int)])

    def test_minibatches_cover_all(self):
        sequences = [np.ones((i + 1, 2)) for i in range(10)]
        labels = [np.zeros(i + 1, dtype=int) for i in range(10)]
        seen = 0
        for x, y, mask in iterate_minibatches(sequences, labels, 3,
                                              rng=0):
            seen += x.shape[0]
        assert seen == 10

    def test_minibatch_buckets_by_length(self):
        sequences = [np.ones((n, 1)) for n in (1, 50, 2, 49)]
        labels = [np.zeros(n, dtype=int) for n in (1, 50, 2, 49)]
        batches = list(iterate_minibatches(sequences, labels, 2, rng=0))
        sizes = sorted(batch[0].shape[1] for batch in batches)
        # Short pair padded to 2, long pair padded to 50.
        assert sizes == [2, 50]


class TestSequenceClassifier:
    def test_predict_shapes(self):
        model = SequenceClassifier(input_dim=3, hidden_dim=4, rng=0)
        x = np.zeros((2, 6, 3))
        assert model.predict_proba(x).shape == (2, 6, 2)
        assert model.predict(x).shape == (2, 6)

    def test_learns_separable_task(self, rng):
        model = SequenceClassifier(input_dim=2, hidden_dim=6, rng=1)
        sequences = [rng.standard_normal((8, 2)) for _ in range(24)]
        labels = [(s[:, 0] > 0).astype(int) for s in sequences]
        model.fit(sequences, labels, epochs=25, batch_size=6,
                  learning_rate=0.02, rng=2)
        accuracy = np.mean(
            [
                (model.predict(s[None])[0] == l).mean()
                for s, l in zip(sequences, labels)
            ]
        )
        assert accuracy > 0.9

    def test_save_load_roundtrip(self, tmp_path, rng):
        model = SequenceClassifier(input_dim=3, hidden_dim=4, rng=3)
        x = rng.standard_normal((1, 5, 3))
        expected = model.predict_proba(x)
        path = tmp_path / "model.npz"
        model.save(path)
        restored = SequenceClassifier.load(path)
        np.testing.assert_allclose(
            restored.predict_proba(x), expected, atol=1e-12
        )

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ModelError):
            SequenceClassifier.load(tmp_path / "nope.npz")

    def test_rejects_single_class(self):
        with pytest.raises(ModelError):
            SequenceClassifier(input_dim=3, n_classes=1)
