"""Micro-batch scheduler: compatibility classes, deadlines, FIFO."""

import pytest

from repro.errors import ConfigurationError
from repro.serve.batching import BatchingConfig, MicroBatchScheduler


class TestValidation:
    def test_zero_batch_size_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchingConfig(max_batch_size=0)

    def test_negative_max_wait_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchingConfig(max_wait_s=-0.01)


class TestBatchFormation:
    def test_full_class_dispatches_immediately(self):
        scheduler = MicroBatchScheduler(
            BatchingConfig(max_batch_size=3, max_wait_s=10.0)
        )
        for index in range(3):
            scheduler.offer(index, key="a", now=0.0)
        batches = scheduler.ready_batches(now=0.0)
        assert len(batches) == 1
        assert batches[0].entries == [0, 1, 2]
        assert batches[0].formed_reason == "full"
        assert scheduler.n_pending == 0

    def test_partial_class_waits_until_deadline(self):
        scheduler = MicroBatchScheduler(
            BatchingConfig(max_batch_size=4, max_wait_s=0.5)
        )
        scheduler.offer("x", key="a", now=0.0)
        assert scheduler.ready_batches(now=0.4) == []
        batches = scheduler.ready_batches(now=0.5)
        assert len(batches) == 1
        assert batches[0].formed_reason == "deadline"

    def test_incompatible_keys_never_share_a_batch(self):
        scheduler = MicroBatchScheduler(
            BatchingConfig(max_batch_size=8, max_wait_s=0.0)
        )
        scheduler.offer("a1", key=(16_000.0, False), now=0.0)
        scheduler.offer("b1", key=(8_000.0, False), now=0.0)
        scheduler.offer("a2", key=(16_000.0, False), now=0.0)
        batches = scheduler.ready_batches(now=0.0)
        grouped = {batch.key: batch.entries for batch in batches}
        assert grouped[(16_000.0, False)] == ["a1", "a2"]
        assert grouped[(8_000.0, False)] == ["b1"]

    def test_fifo_preserved_within_class(self):
        scheduler = MicroBatchScheduler(
            BatchingConfig(max_batch_size=2, max_wait_s=0.0)
        )
        for index in range(6):
            scheduler.offer(index, key="a", now=float(index))
        batches = scheduler.ready_batches(now=10.0)
        flattened = [
            entry for batch in batches for entry in batch.entries
        ]
        assert flattened == list(range(6))

    def test_oversize_class_splits_into_multiple_full_batches(self):
        scheduler = MicroBatchScheduler(
            BatchingConfig(max_batch_size=3, max_wait_s=10.0)
        )
        for index in range(7):
            scheduler.offer(index, key="a", now=0.0)
        batches = scheduler.ready_batches(now=0.0)
        assert [len(batch) for batch in batches] == [3, 3]
        assert scheduler.n_pending == 1  # the tail waits for its deadline


class TestFlushAndDeadline:
    def test_flush_empties_everything(self):
        scheduler = MicroBatchScheduler(
            BatchingConfig(max_batch_size=2, max_wait_s=100.0)
        )
        scheduler.offer("a1", key="a", now=0.0)
        scheduler.offer("b1", key="b", now=0.0)
        scheduler.offer("b2", key="b", now=0.0)
        scheduler.offer("b3", key="b", now=0.0)
        batches = scheduler.flush()
        assert scheduler.n_pending == 0
        assert sorted(len(batch) for batch in batches) == [1, 1, 2]
        assert all(
            batch.formed_reason == "flush" for batch in batches
        )

    def test_next_deadline_tracks_oldest_entry(self):
        scheduler = MicroBatchScheduler(
            BatchingConfig(max_batch_size=8, max_wait_s=1.0)
        )
        assert scheduler.next_deadline(now=0.0) is None
        scheduler.offer("a", key="a", now=0.0)
        scheduler.offer("b", key="b", now=0.5)
        assert scheduler.next_deadline(now=0.25) == pytest.approx(0.75)
        # Never negative, even past due.
        assert scheduler.next_deadline(now=5.0) == 0.0

    def test_zero_max_wait_dispatches_singletons(self):
        scheduler = MicroBatchScheduler(
            BatchingConfig(max_batch_size=8, max_wait_s=0.0)
        )
        scheduler.offer("a", key="a", now=1.0)
        batches = scheduler.ready_batches(now=1.0)
        assert len(batches) == 1
        assert batches[0].entries == ["a"]
