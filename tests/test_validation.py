"""Input validation helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SignalError
from repro.utils.validation import (
    ensure_1d,
    ensure_2d,
    ensure_positive,
    ensure_probability,
)


def test_ensure_1d_accepts_lists():
    out = ensure_1d([1, 2, 3])
    assert out.dtype == np.float64
    assert out.shape == (3,)


def test_ensure_1d_rejects_2d():
    with pytest.raises(SignalError):
        ensure_1d(np.zeros((2, 2)))


def test_ensure_1d_rejects_empty():
    with pytest.raises(SignalError):
        ensure_1d(np.zeros(0))


def test_ensure_1d_names_the_signal():
    with pytest.raises(SignalError, match="myarg"):
        ensure_1d(np.zeros((2, 2)), "myarg")


def test_ensure_2d_accepts_matrix():
    out = ensure_2d([[1.0, 2.0], [3.0, 4.0]])
    assert out.shape == (2, 2)


def test_ensure_2d_rejects_1d():
    with pytest.raises(SignalError):
        ensure_2d(np.zeros(3))


def test_ensure_positive_accepts_positive():
    assert ensure_positive(2.5, "x") == 2.5


@pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
def test_ensure_positive_rejects(bad):
    with pytest.raises(ConfigurationError):
        ensure_positive(bad, "x")


@pytest.mark.parametrize("good", [0.0, 0.5, 1.0])
def test_ensure_probability_accepts(good):
    assert ensure_probability(good, "p") == good


@pytest.mark.parametrize("bad", [-0.1, 1.1, float("nan")])
def test_ensure_probability_rejects(bad):
    with pytest.raises(ConfigurationError):
        ensure_probability(bad, "p")
