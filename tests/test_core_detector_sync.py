"""2-D correlation detector and cross-device synchronization."""

import numpy as np
import pytest

from repro.core.detector import CorrelationDetector, DetectorConfig
from repro.core.sync import SyncConfig, synchronize_recordings
from repro.errors import ConfigurationError

RATE = 16_000.0


class TestDetector:
    def test_score_bounds(self, rng):
        detector = CorrelationDetector()
        a = rng.standard_normal((10, 10))
        assert detector.score(a, a) == pytest.approx(1.0)

    def test_is_attack_requires_threshold(self, rng):
        detector = CorrelationDetector()
        a = rng.standard_normal((5, 5))
        with pytest.raises(ConfigurationError):
            detector.is_attack(a, a)

    def test_threshold_decision(self, rng):
        detector = CorrelationDetector(DetectorConfig(threshold=0.5))
        a = rng.standard_normal((10, 10))
        b = rng.standard_normal((10, 10))
        assert not detector.is_attack(a, a)      # corr 1.0 > 0.5
        assert detector.is_attack(a, b)          # corr ~0 < 0.5

    def test_with_threshold_copy(self):
        detector = CorrelationDetector()
        thresholded = detector.with_threshold(0.4)
        assert thresholded.config.threshold == 0.4
        assert detector.config.threshold is None

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig(threshold=1.5)


class TestSync:
    def _pair(self, rng, delay_samples):
        burst = np.zeros(16_000)
        burst[4000:8000] = rng.standard_normal(4000)
        return burst, burst[delay_samples:]

    def test_recovers_known_delay(self, rng):
        va, wearable = self._pair(rng, 1600)
        va_a, wearable_a, delay_s = synchronize_recordings(
            va, wearable, RATE
        )
        assert delay_s == pytest.approx(0.1, abs=0.001)
        assert va_a.size == wearable_a.size
        np.testing.assert_allclose(va_a, wearable_a)

    def test_zero_delay(self, rng):
        va, _ = self._pair(rng, 0)
        _, _, delay_s = synchronize_recordings(va, va.copy(), RATE)
        assert delay_s == 0.0

    def test_handles_noise(self, rng):
        va, wearable = self._pair(rng, 800)
        wearable = wearable + 0.05 * rng.standard_normal(wearable.size)
        va_a, wearable_a, delay_s = synchronize_recordings(
            va, wearable, RATE
        )
        assert delay_s == pytest.approx(0.05, abs=0.005)
        assert np.corrcoef(va_a, wearable_a)[0, 1] > 0.9

    def test_max_delay_bounds_search(self, rng):
        va, wearable = self._pair(rng, 4000)  # 0.25 s
        _, _, delay_s = synchronize_recordings(
            va, wearable, RATE, SyncConfig(max_delay_s=0.1)
        )
        assert delay_s <= 0.1 + 1e-9

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            SyncConfig(max_delay_s=0.0)


class TestDetectorDecide:
    def test_decide_is_single_source_of_truth(self, rng):
        from repro.core.detector import CorrelationDetector, DetectorConfig

        detector = CorrelationDetector(DetectorConfig(threshold=0.4))
        a = rng.standard_normal((6, 8))
        b = rng.standard_normal((6, 8))
        assert detector.is_attack(a, b) == detector.decide(
            detector.score(a, b)
        )

    def test_decide_boundary_semantics(self):
        from repro.core.detector import CorrelationDetector, DetectorConfig

        detector = CorrelationDetector(DetectorConfig(threshold=0.4))
        # Attack iff strictly below the threshold.
        assert detector.decide(0.4 - 1e-9)
        assert not detector.decide(0.4)

    def test_decide_requires_threshold(self):
        from repro.core.detector import CorrelationDetector
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CorrelationDetector().decide(0.5)
