"""Attack-space geometry and the θ-parameterized waveform transform."""

import numpy as np
import pytest

from repro.attacks.base import AttackKind, AttackSound
from repro.errors import ConfigurationError
from repro.redteam.space import AttackSpace


def _tone(n=1600, rate=16_000.0):
    t = np.arange(n) / rate
    return np.sin(2 * np.pi * 440.0 * t) + 0.3 * np.sin(
        2 * np.pi * 1200.0 * t
    )


def test_dimension_and_bounds():
    space = AttackSpace(n_bands=6, n_slices=3)
    assert space.dimension == 9
    assert space.upper_bounds.shape == (9,)
    assert np.all(space.lower_bounds == -space.upper_bounds)
    assert np.all(space.upper_bounds[:6] == space.max_band_gain_db)
    assert np.all(space.upper_bounds[6:] == space.max_slice_gain_db)


def test_band_edges_are_log_spaced_and_cover_range():
    space = AttackSpace(n_bands=8, band_low_hz=50.0, band_high_hz=4000.0)
    edges = space.band_edges_hz
    assert edges.shape == (9,)
    assert edges[0] == pytest.approx(50.0)
    assert edges[-1] == pytest.approx(4000.0)
    ratios = edges[1:] / edges[:-1]
    assert np.allclose(ratios, ratios[0])


def test_identity_is_exact_passthrough():
    space = AttackSpace()
    waveform = _tone()
    out = space.apply(waveform, 16_000.0, space.identity())
    assert np.array_equal(out, waveform)


def test_clip_projects_into_box_and_validates_shape():
    space = AttackSpace(n_bands=4, n_slices=2)
    wild = np.array([100.0, -100.0, 0.0, 5.0, 50.0, -50.0])
    clipped = space.clip(wild)
    assert np.all(clipped <= space.upper_bounds)
    assert np.all(clipped >= space.lower_bounds)
    with pytest.raises(ConfigurationError):
        space.clip(np.zeros(5))


def test_band_gain_moves_band_energy():
    space = AttackSpace(n_bands=4, n_slices=0)
    waveform = _tone()
    params = space.identity()
    # 440 Hz falls in band 1 of [50, 150, 447, 1337, 4000].
    params[1] = 12.0
    shaped = space.apply(waveform, 16_000.0, params)
    spectrum_in = np.abs(np.fft.rfft(waveform))
    spectrum_out = np.abs(np.fft.rfft(shaped))
    freqs = np.fft.rfftfreq(waveform.size, d=1 / 16_000.0)
    band = (freqs >= 150.0) & (freqs < 447.0)
    other = (freqs >= 447.0) & (freqs < 1337.0)  # holds the 1200 Hz tone
    gain = spectrum_out[band].sum() / spectrum_in[band].sum()
    assert gain == pytest.approx(10 ** (12.0 / 20.0), rel=1e-6)
    assert spectrum_out[other].sum() == pytest.approx(
        spectrum_in[other].sum(), rel=1e-6
    )


def test_slice_gains_shape_temporal_envelope():
    space = AttackSpace(n_bands=1, n_slices=2)
    waveform = np.ones(1000)
    params = np.array([0.0, -6.0, 6.0])
    shaped = space.apply(waveform, 16_000.0, params)
    # The early half is attenuated, the late half amplified.
    assert shaped[:250].mean() < 1.0 < shaped[750:].mean()
    assert shaped[0] == pytest.approx(10 ** (-6.0 / 20.0))
    assert shaped[-1] == pytest.approx(10 ** (6.0 / 20.0))


def test_mutate_preserves_attack_metadata():
    space = AttackSpace(n_bands=2, n_slices=0)
    attack = AttackSound(
        kind=AttackKind.REPLAY,
        waveform=_tone(),
        sample_rate=16_000.0,
        description="replay of victim",
    )
    params = np.array([6.0, -6.0])
    shaped = space.mutate(attack, params)
    assert shaped.kind == attack.kind
    assert shaped.sample_rate == attack.sample_rate
    assert "redteam-shaped" in shaped.description
    assert not np.array_equal(shaped.waveform, attack.waveform)
    # θ = 0 keeps the waveform bitwise.
    assert np.array_equal(
        space.mutate(attack, space.identity()).waveform,
        attack.waveform,
    )


def test_random_respects_bounds_and_is_seeded():
    space = AttackSpace()
    a = space.random(np.random.default_rng(5))
    b = space.random(np.random.default_rng(5))
    assert np.array_equal(a, b)
    assert np.all(np.abs(a) <= space.upper_bounds)


def test_dict_round_trip():
    space = AttackSpace(n_bands=3, n_slices=5, max_band_gain_db=9.0)
    assert AttackSpace.from_dict(space.to_dict()) == space


def test_invalid_configs_raise():
    with pytest.raises(ConfigurationError):
        AttackSpace(n_bands=0)
    with pytest.raises(ConfigurationError):
        AttackSpace(band_low_hz=500.0, band_high_hz=100.0)
    with pytest.raises(ConfigurationError):
        AttackSpace(max_band_gain_db=0.0)


def test_describe_mentions_every_band_and_slice():
    space = AttackSpace(n_bands=2, n_slices=2)
    text = space.describe(np.array([1.0, -2.0, 3.0, -4.0]))
    assert "bands[" in text and "slices[" in text
    assert "+1.0dB" in text and "-4.0dB" in text
