"""Per-attack RNG streams: bitwise reproducibility across executors."""

import numpy as np
import pytest

from repro.attacks import (
    AttackKind,
    HiddenVoiceAttack,
    RandomAttack,
    ReplayAttack,
    VoiceSynthesisAttack,
    attack_stream,
)
from repro.phonemes import SyntheticCorpus
from repro.redteam.campaign import attack_digest_unit
from repro.runtime import FallbackPolicy, Runtime

CORPUS = SyntheticCorpus(n_speakers=3, seed=11)


def _generators():
    return {
        AttackKind.REPLAY: ReplayAttack(CORPUS, CORPUS.speakers[0]),
        AttackKind.RANDOM: RandomAttack(CORPUS, CORPUS.speakers[1]),
        AttackKind.HIDDEN_VOICE: HiddenVoiceAttack(CORPUS),
        AttackKind.SYNTHESIS: VoiceSynthesisAttack(
            CORPUS, CORPUS.speakers[0], rng=0
        ),
    }


def test_attack_stream_accepts_kind_or_label():
    a = attack_stream(7, AttackKind.REPLAY, 3)
    b = attack_stream(7, "replay", 3)
    assert a.bit_generator.state == b.bit_generator.state


def test_attack_stream_rejects_negative_index():
    with pytest.raises(ValueError):
        attack_stream(0, AttackKind.REPLAY, -1)


def test_streams_differ_by_seed_kind_and_index():
    base = attack_stream(0, "replay", 0).bit_generator.state
    for other in (
        attack_stream(1, "replay", 0),
        attack_stream(0, "random", 0),
        attack_stream(0, "replay", 1),
    ):
        assert other.bit_generator.state != base


@pytest.mark.parametrize("kind", list(AttackKind))
def test_generate_indexed_is_bitwise_reproducible(kind):
    generator = _generators()[kind]
    a = generator.generate_indexed(5, 2)
    b = generator.generate_indexed(5, 2)
    assert np.array_equal(a.waveform, b.waveform)
    assert a.kind == kind


def test_generate_indexed_varies_with_index():
    generator = _generators()[AttackKind.REPLAY]
    a = generator.generate_indexed(5, 0)
    b = generator.generate_indexed(5, 1)
    assert not np.array_equal(a.waveform, b.waveform)


def test_indexed_attacks_are_order_independent():
    """Stream-per-attack means generation order cannot matter."""
    generator = _generators()[AttackKind.RANDOM]
    forward = [generator.generate_indexed(3, i) for i in range(4)]
    backward = [
        generator.generate_indexed(3, i) for i in reversed(range(4))
    ]
    for a, b in zip(forward, reversed(backward)):
        assert np.array_equal(a.waveform, b.waveform)


@pytest.mark.parametrize("executor", ["inline", "process"])
def test_digests_are_bitwise_identical_across_executors(executor):
    """The determinism contract under process-parallel execution.

    Each unit rebuilds its attack from (seed, kind, index) in whatever
    process it lands in; the SHA-256 of the waveform must not depend on
    the executor, the worker count, or which worker ran it.
    """
    payloads = [
        (7, "replay", index, "ok google turn on the lights")
        for index in range(3)
    ] + [(7, "random", 0, None)]
    runtime = Runtime(
        executor,
        n_workers=2,
        fallback=FallbackPolicy(ladder=("process", "inline")),
    )
    try:
        digests = runtime.map_units(attack_digest_unit, payloads)
    finally:
        runtime.shutdown()
    inline = [attack_digest_unit(payload) for payload in payloads]
    assert digests == inline
    # Distinct indices produce distinct attacks.
    assert len(set(digests)) == len(digests)
