"""Batched inference: parity contracts across nn, segmenter, pipeline,
and serving layers, plus the batched-forward metrics."""

import numpy as np
import pytest

from repro.core.pipeline import (
    PIPELINE_STAGES,
    BatchAnalysisItem,
    DefenseConfig,
    DefensePipeline,
)
from repro.core.segmentation import PhonemeSegmenter
from repro.errors import ModelError
from repro.eval.reporting import format_service_metrics
from repro.nn.model import SequenceClassifier
from repro.serve.metrics import MetricsCollector
from repro.serve.request import VerificationRequest
from repro.serve.workers import PipelineSpec, execute_batch

RATE = 16_000.0


@pytest.fixture(scope="module")
def trained_segmenter(corpus):
    segmenter = PhonemeSegmenter(rng=5)
    segmenter.train_on_phoneme_segments(
        corpus, n_per_phoneme=4, epochs=6, rng=6
    )
    return segmenter


@pytest.fixture(scope="module")
def utterance_audios(corpus):
    """Ragged-length recordings: three utterances plus plain noise."""
    sequences = [
        ["aa", "s", "iy"],
        ["m", "ow", "z", "eh", "n"],
        ["sh", "ah"],
    ]
    audios = [
        corpus.utterance(sequence, rng=40 + index).waveform
        for index, sequence in enumerate(sequences)
    ]
    audios.append(np.random.default_rng(9).normal(0.0, 0.05, 5_000))
    return audios


class TestInferenceForward:
    @pytest.fixture(scope="class")
    def model(self):
        return SequenceClassifier(input_dim=6, hidden_dim=8, rng=0)

    @pytest.fixture(scope="class")
    def inputs(self):
        return np.random.default_rng(3).normal(size=(3, 12, 6))

    def test_matches_training_forward_bitwise(self, model, inputs):
        expected = model.forward(inputs)  # training path
        actual = model.forward(inputs, training=False)
        np.testing.assert_array_equal(actual, expected)

    def test_singleton_batch_close_to_training(self, model, inputs):
        # Batch 1 is mirrored onto the multi-row BLAS kernel, so it can
        # differ from the training forward's single-row kernel in the
        # last ulp — but no more.
        expected = model.forward(inputs[:1])
        actual = model.forward(inputs[:1], training=False)
        np.testing.assert_allclose(actual, expected, rtol=1e-10)

    def test_batch_size_independence_bitwise(self, model, inputs):
        # The contract the segmenter's batched path relies on: a
        # sequence scored alone equals the same sequence inside a
        # larger batch, bitwise.
        batched = model.forward(inputs, training=False)
        for index in range(inputs.shape[0]):
            alone = model.forward(
                inputs[index : index + 1], training=False
            )
            np.testing.assert_array_equal(alone[0], batched[index])

    def test_float32_within_tolerance(self, model, inputs):
        expected = model.forward(inputs, training=False)
        actual = model.forward(inputs, training=False, dtype=np.float32)
        assert actual.dtype == np.float32
        np.testing.assert_allclose(actual, expected, atol=1e-4)

    def test_inference_writes_no_caches(self, model, inputs):
        model.brnn.forward_layer._cache = None
        model.brnn.backward_layer._cache = None
        model.head._cache = None
        model.forward(inputs, training=False)
        assert model.brnn.forward_layer._cache is None
        assert model.brnn.backward_layer._cache is None
        assert model.head._cache is None

    def test_mask_rejected_on_training_path(self, model, inputs):
        mask = np.ones(inputs.shape[:2], dtype=bool)
        with pytest.raises(ModelError):
            model.forward(inputs, training=True, mask=mask)
        with pytest.raises(ModelError):
            model.forward(inputs, training=True, dtype=np.float32)

    def test_masked_padding_is_inert(self, model, inputs):
        # Right-padding a sequence with garbage frames must not change
        # its valid frames when the mask marks them invalid.
        short = inputs[:, :7, :]
        padded = np.concatenate(
            [short, np.full((3, 5, 6), 123.0)], axis=1
        )
        mask = np.zeros((3, 12), dtype=bool)
        mask[:, :7] = True
        expected = model.forward(short, training=False)
        actual = model.forward(padded, training=False, mask=mask)
        np.testing.assert_array_equal(actual[:, :7], expected)


class TestSegmenterBatchParity:
    def test_batch_matches_single_bitwise(
        self, trained_segmenter, utterance_audios
    ):
        batched = trained_segmenter.frame_probabilities_batch(
            utterance_audios
        )
        assert len(batched) == len(utterance_audios)
        for audio, probabilities in zip(utterance_audios, batched):
            single = trained_segmenter.frame_probabilities(audio)
            np.testing.assert_array_equal(probabilities, single)

    def test_batch_of_one_matches_single_bitwise(
        self, trained_segmenter, utterance_audios
    ):
        audio = utterance_audios[0]
        batched = trained_segmenter.frame_probabilities_batch([audio])
        single = trained_segmenter.frame_probabilities(audio)
        np.testing.assert_array_equal(batched[0], single)

    def test_float32_within_tolerance(
        self, trained_segmenter, utterance_audios
    ):
        batched64 = trained_segmenter.frame_probabilities_batch(
            utterance_audios
        )
        batched32 = trained_segmenter.frame_probabilities_batch(
            utterance_audios, dtype=np.float32
        )
        for p64, p32 in zip(batched64, batched32):
            np.testing.assert_allclose(p32, p64, atol=1e-3)

    def test_segments_batch_matches_single(
        self, trained_segmenter, utterance_audios
    ):
        batched = trained_segmenter.segments_batch(utterance_audios)
        singles = [
            trained_segmenter.segments(audio)
            for audio in utterance_audios
        ]
        assert batched == singles

    def test_empty_batch(self, trained_segmenter):
        assert trained_segmenter.frame_probabilities_batch([]) == []
        assert trained_segmenter.segments_batch([]) == []

    def test_silence_yields_no_segments(self, trained_segmenter):
        silence = np.zeros(4_000)
        batched = trained_segmenter.segments_batch(
            [silence, np.zeros(2_000)]
        )
        singles = [
            trained_segmenter.segments(silence),
            trained_segmenter.segments(np.zeros(2_000)),
        ]
        assert batched == singles

    def test_untrained_raises(self):
        with pytest.raises(ModelError):
            PhonemeSegmenter(rng=1).frame_probabilities_batch(
                [np.zeros(4_000)]
            )


def make_pair(seed, n_samples=8_000):
    rng = np.random.default_rng(seed)
    va = rng.normal(0.0, 0.1, n_samples)
    wearable = 0.8 * va + rng.normal(0.0, 0.02, n_samples)
    return va, wearable


class TestAnalyzeBatch:
    @pytest.fixture(scope="class")
    def pipeline(self, trained_segmenter):
        return DefensePipeline(
            segmenter=trained_segmenter,
            config=DefenseConfig(audio_rate=RATE),
        )

    def test_verdicts_match_sequential_bitwise(self, pipeline):
        items = []
        for seed in (11, 22, 33, 44):
            va, wearable = make_pair(seed, n_samples=6_000 + 700 * seed)
            items.append(
                BatchAnalysisItem(
                    va_audio=va, wearable_audio=wearable, rng=seed
                )
            )
        outcomes = pipeline.analyze_batch(items)
        assert all(outcome.ok for outcome in outcomes)
        for item, outcome in zip(items, outcomes):
            expected, _ = pipeline.analyze_timed(
                item.va_audio, item.wearable_audio, rng=item.rng
            )
            assert outcome.verdict == expected
            assert set(outcome.timings) == set(PIPELINE_STAGES)

    def test_error_isolation(self, pipeline):
        va, wearable = make_pair(7)
        items = [
            BatchAnalysisItem(
                va_audio=va, wearable_audio=wearable, rng=7
            ),
            BatchAnalysisItem(
                va_audio=np.zeros(0), wearable_audio=wearable, rng=8
            ),
            BatchAnalysisItem(
                va_audio=va, wearable_audio=wearable, rng=9
            ),
        ]
        outcomes = pipeline.analyze_batch(items)
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert outcomes[1].error is not None
        assert outcomes[0].verdict == pipeline.analyze(
            va, wearable, rng=7
        )
        assert outcomes[2].verdict == pipeline.analyze(
            va, wearable, rng=9
        )

    def test_skip_segmentation_matches_sequential(self, pipeline):
        va, wearable = make_pair(17)
        items = [
            BatchAnalysisItem(
                va_audio=va,
                wearable_audio=wearable,
                rng=17,
                skip_segmentation=True,
            ),
            BatchAnalysisItem(
                va_audio=va, wearable_audio=wearable, rng=18
            ),
        ]
        outcomes = pipeline.analyze_batch(items)
        assert outcomes[0].verdict == pipeline.analyze(
            va, wearable, rng=17, skip_segmentation=True
        )
        assert outcomes[0].verdict.n_segments == 0


def make_request(seed, n_samples=8_000, **kwargs):
    va, wearable = make_pair(seed, n_samples=n_samples)
    kwargs.setdefault("request_id", f"req-{seed}")
    return VerificationRequest(
        va_audio=va, wearable_audio=wearable, seed=seed, **kwargs
    )


class TestExecuteBatchParity:
    """The serving contract: batched verdicts equal sequential ones."""

    KEY = (RATE, False)

    def _verdicts(self, spec, requests):
        batched = execute_batch(
            (spec, self.KEY, [(request, 0.0) for request in requests])
        )
        singles = [
            execute_batch((spec, self.KEY, [(request, 0.0)]))[0]
            for request in requests
        ]
        return batched, singles

    def test_fast_spec_parity(self):
        spec = PipelineSpec(use_segmenter=False)
        requests = [make_request(seed) for seed in (1, 2, 3, 4)]
        batched, singles = self._verdicts(spec, requests)
        assert all(result.batched for result in batched)
        assert not any(result.batched for result in singles)
        for together, alone in zip(batched, singles):
            assert together.error is None and alone.error is None
            assert together.verdict == alone.verdict
            assert set(together.stage_timings_s) == set(PIPELINE_STAGES)

    def test_segmenter_spec_parity(self):
        spec = PipelineSpec(
            segmenter_seed=7, n_speakers=2, n_per_phoneme=3, epochs=3
        )
        requests = [make_request(seed) for seed in (5, 6, 7)]
        batched, singles = self._verdicts(spec, requests)
        assert all(result.batched for result in batched)
        for together, alone in zip(batched, singles):
            assert together.verdict == alone.verdict

    def test_poisoned_request_degrades_only_itself(self):
        spec = PipelineSpec(use_segmenter=False)
        good = [make_request(seed) for seed in (10, 11)]
        bad = VerificationRequest(
            va_audio=np.zeros(0),
            wearable_audio=np.zeros(8_000),
            seed=12,
            request_id="req-bad",
        )
        results = execute_batch(
            (
                spec,
                self.KEY,
                [(good[0], 0.0), (bad, 0.0), (good[1], 0.0)],
            )
        )
        assert results[1].error is not None
        for index, request in ((0, good[0]), (2, good[1])):
            assert results[index].error is None
            alone = execute_batch(
                (spec, self.KEY, [(request, 0.0)])
            )[0]
            assert results[index].verdict == alone.verdict


class TestBatchedForwardMetrics:
    def test_collector_counts_forwards(self):
        collector = MetricsCollector()
        collector.record_batched_forward(4)
        collector.record_batched_forward(2)
        snapshot = collector.snapshot()
        assert snapshot.n_batched_forwards == 2
        assert snapshot.requests_per_forward == pytest.approx(3.0)

    def test_defaults_to_zero(self):
        snapshot = MetricsCollector().snapshot()
        assert snapshot.n_batched_forwards == 0
        assert snapshot.requests_per_forward == 0.0
        assert "vectorized" not in format_service_metrics(snapshot)

    def test_report_includes_vectorized_line(self):
        collector = MetricsCollector()
        collector.record_batched_forward(8)
        report = format_service_metrics(collector.snapshot())
        assert "vectorized: 1 batched forwards" in report
        assert "8.00 requests/forward" in report
