"""Phoneme inventory contracts."""

import pytest

from repro.errors import ConfigurationError
from repro.phonemes.inventory import (
    COMMON_PHONEMES,
    PAPER_EXCLUDED_PHONEMES,
    PAPER_SELECTED_PHONEMES,
    PHONEME_INVENTORY,
    PhonemeClass,
    get_phoneme,
    phoneme_symbols,
)


def test_inventory_has_63_symbols():
    assert len(PHONEME_INVENTORY) == 63


def test_common_phonemes_are_37():
    assert len(COMMON_PHONEMES) == 37


def test_selected_phonemes_are_31():
    assert len(PAPER_SELECTED_PHONEMES) == 31


def test_excluded_set_matches_paper_examples():
    # The paper names /s/, /z/ (weak) and /aa/, /ao/ (too loud).
    assert {"s", "z", "aa", "ao"} <= PAPER_EXCLUDED_PHONEMES


def test_selected_and_excluded_partition_common():
    assert PAPER_SELECTED_PHONEMES | PAPER_EXCLUDED_PHONEMES == set(
        COMMON_PHONEMES
    )
    assert not PAPER_SELECTED_PHONEMES & PAPER_EXCLUDED_PHONEMES


def test_common_phonemes_exist_in_inventory():
    for symbol in COMMON_PHONEMES:
        assert symbol in PHONEME_INVENTORY


def test_table2_counts_are_descending_for_top_entries():
    counts = list(COMMON_PHONEMES.values())
    assert counts[0] == 129  # /t/
    assert COMMON_PHONEMES["uh"] == 6


def test_get_phoneme_known():
    assert get_phoneme("ae").symbol == "ae"


def test_get_phoneme_unknown_raises():
    with pytest.raises(ConfigurationError, match="unknown phoneme"):
        get_phoneme("xx")


def test_weak_fricatives_are_quiet():
    for symbol in ("s", "z", "sh", "th"):
        assert get_phoneme(symbol).intensity_db <= -20.0


def test_loud_vowels_are_loud():
    for symbol in ("aa", "ao"):
        assert get_phoneme(symbol).intensity_db >= 8.0
    for symbol in ("iy", "eh", "ih", "uw"):
        assert get_phoneme(symbol).intensity_db < 5.0


def test_silences_do_not_sound():
    for symbol in ("pau", "h#", "sil", "sp", "bcl", "tcl"):
        assert not get_phoneme(symbol).is_sounding


def test_phoneme_symbols_sounding_filter():
    all_symbols = phoneme_symbols()
    sounding = phoneme_symbols(sounding_only=True)
    assert len(sounding) < len(all_symbols)
    assert "sp" not in sounding
    assert "ae" in sounding


def test_vowels_have_three_or_more_formants():
    for symbol in ("iy", "ae", "uw", "er"):
        phoneme = get_phoneme(symbol)
        assert phoneme.klass is PhonemeClass.VOWEL
        assert len(phoneme.formants) >= 3


def test_formant_arrays_consistent():
    for phoneme in PHONEME_INVENTORY.values():
        assert len(phoneme.formants) == len(phoneme.formant_bandwidths)
        assert len(phoneme.formants) == len(phoneme.formant_gains)


def test_fricatives_have_noise_bands():
    for symbol in ("s", "sh", "f", "v"):
        phoneme = get_phoneme(symbol)
        assert phoneme.noise_band is not None
        low, high = phoneme.noise_band
        assert low < high
