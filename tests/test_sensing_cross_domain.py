"""Cross-domain sensor (speaker replay -> accelerometer)."""

import numpy as np
import pytest

from repro.dsp.generators import tone
from repro.dsp.spectrum import fft_magnitude
from repro.sensing.body_motion import body_motion_interference
from repro.sensing.cross_domain import CrossDomainSensor

AUDIO_RATE = 16_000.0


@pytest.fixture(scope="module")
def sensor():
    return CrossDomainSensor()


def test_vibration_rate(sensor):
    assert sensor.vibration_rate == 200.0


def test_output_length(sensor):
    audio = tone(1000.0, 2.0, AUDIO_RATE)
    vibration = sensor.convert(audio, AUDIO_RATE, rng=0)
    assert vibration.size == 400


def test_high_frequency_audio_produces_stronger_vibration():
    # Use a noise-free sensor so only the deterministic coupling counts.
    from repro.sensing.accelerometer import AccelerometerSpec

    quiet_sensor = CrossDomainSensor(
        accelerometer_spec=AccelerometerSpec(
            base_noise_rms=0.0, low_freq_noise_coeff=0.0,
            dc_sensitivity=0.0, lsb=0.0,
        )
    )
    low = tone(200.0, 1.0, AUDIO_RATE, amplitude=0.1)
    high = tone(2000.0, 1.0, AUDIO_RATE, amplitude=0.1)
    vibration_low = quiet_sensor.convert(low, AUDIO_RATE, rng=1)
    vibration_high = quiet_sensor.convert(high, AUDIO_RATE, rng=1)
    freqs, mag_low = fft_magnitude(vibration_low, 200.0)
    _, mag_high = fft_magnitude(vibration_high, 200.0)
    band = freqs > 10.0
    assert mag_high[band].max() > 5 * mag_low[band].max()


def test_two_conversions_of_same_audio_differ(sensor):
    audio = tone(1500.0, 1.0, AUDIO_RATE, amplitude=0.1)
    a = sensor.convert(audio, AUDIO_RATE, rng=1)
    b = sensor.convert(audio, AUDIO_RATE, rng=2)
    assert not np.allclose(a, b)


def test_conversion_reproducible_with_seed(sensor):
    audio = tone(1500.0, 1.0, AUDIO_RATE, amplitude=0.1)
    np.testing.assert_array_equal(
        sensor.convert(audio, AUDIO_RATE, rng=5),
        sensor.convert(audio, AUDIO_RATE, rng=5),
    )


def test_body_motion_raises_low_frequency_energy(sensor):
    audio = tone(1500.0, 2.0, AUDIO_RATE, amplitude=0.05)
    without = sensor.convert(audio, AUDIO_RATE, rng=3)
    with_motion = sensor.convert(
        audio, AUDIO_RATE, rng=3, include_body_motion=True
    )
    freqs, mag_without = fft_magnitude(without, 200.0)
    _, mag_with = fft_magnitude(with_motion, 200.0)
    low = freqs <= 4.0
    assert mag_with[low].sum() > 2 * mag_without[low].sum()


def test_chirp_response_shape(sensor):
    vibration = sensor.chirp_response(500.0, 2500.0, 2.0, rng=4)
    assert vibration.size == 400
    assert np.all(np.isfinite(vibration))


class TestBodyMotion:
    def test_band_limited(self):
        motion = body_motion_interference(2000, 200.0, rng=0)
        freqs, mags = fft_magnitude(motion, 200.0)
        in_band = mags[(freqs >= 0.2) & (freqs <= 5.0)].sum()
        out_band = mags[freqs > 10.0].sum()
        assert in_band > 3 * out_band

    def test_intensity_calibrated(self):
        motion = body_motion_interference(
            4000, 200.0, intensity=0.05, rng=1
        )
        assert np.sqrt(np.mean(motion**2)) == pytest.approx(
            0.05, rel=0.01
        )

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            body_motion_interference(0, 200.0)
