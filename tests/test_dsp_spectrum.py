"""FFT magnitude, PSD, band energies."""

import numpy as np
import pytest

from repro.dsp.generators import tone, white_noise
from repro.dsp.spectrum import (
    band_energy,
    band_energy_ratio,
    fft_frequencies,
    fft_magnitude,
    mean_fft_magnitude,
    power_spectral_density,
)
from repro.errors import ConfigurationError, SignalError

RATE = 1000.0


def test_fft_frequencies_span():
    freqs = fft_frequencies(100, RATE)
    assert freqs[0] == 0.0
    assert freqs[-1] == pytest.approx(RATE / 2)


def test_fft_magnitude_of_sinusoid_peaks_at_its_frequency():
    signal = tone(100.0, 1.0, RATE, amplitude=2.0)
    freqs, mags = fft_magnitude(signal, RATE)
    assert freqs[np.argmax(mags)] == pytest.approx(100.0, abs=1.0)


def test_fft_magnitude_amplitude_calibration():
    # A unit sinusoid should give magnitude ~1 at its bin.
    signal = tone(100.0, 1.0, RATE, amplitude=1.0)
    _, mags = fft_magnitude(signal, RATE)
    assert mags.max() == pytest.approx(1.0, rel=0.05)


def test_fft_magnitude_rejects_empty():
    with pytest.raises(SignalError):
        fft_magnitude(np.array([]), RATE)


def test_mean_fft_magnitude_averages():
    signals = [tone(50.0, 0.5, RATE) for _ in range(3)]
    freqs, mean_mag = mean_fft_magnitude(signals, RATE, n_fft=512)
    _, single = fft_magnitude(signals[0][:512], RATE, n_fft=512)
    assert mean_mag.shape == single.shape
    assert freqs[np.argmax(mean_mag)] == pytest.approx(50.0, abs=2.0)


def test_mean_fft_magnitude_rejects_empty_population():
    with pytest.raises(SignalError):
        mean_fft_magnitude([], RATE, 128)


def test_psd_parseval():
    signal = white_noise(1.0, RATE, amplitude=1.0, rng=0)
    _, psd = power_spectral_density(signal, RATE)
    # Integral of one-sided PSD over frequency ~ signal variance.
    df = RATE / signal.size
    assert psd.sum() * df == pytest.approx(np.var(signal), rel=0.05)


def test_band_energy_concentrated_for_tone():
    signal = tone(200.0, 1.0, RATE)
    inside = band_energy(signal, RATE, 150.0, 250.0)
    outside = band_energy(signal, RATE, 300.0, 450.0)
    assert inside > 100 * outside


def test_band_energy_invalid_band():
    with pytest.raises(ConfigurationError):
        band_energy(tone(100.0, 0.1, RATE), RATE, 200.0, 100.0)


def test_band_energy_ratio_tone_above_split():
    signal = tone(400.0, 1.0, RATE)
    assert band_energy_ratio(signal, RATE, 300.0) > 0.95


def test_band_energy_ratio_tone_below_split():
    signal = tone(100.0, 1.0, RATE)
    assert band_energy_ratio(signal, RATE, 300.0) < 0.05


def test_band_energy_ratio_of_silence_is_zero():
    assert band_energy_ratio(np.zeros(256) + 0.0, RATE, 100.0) == 0.0
