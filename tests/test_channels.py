"""Golden bitwise-parity tests for the composable channel layer.

The refactor moved the hardwired loudspeaker → barrier and speaker →
conduction → accelerometer chains behind :class:`PropagationChannel`.
These tests pin the contract that made the move safe: composing the
same pieces through the channel produces **bitwise identical** arrays
to the pre-refactor inline chains, for both the sequential and the
batched paths, including the exact per-stage RNG stream derivation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.acoustics.barrier import Barrier
from repro.acoustics.loudspeaker import (
    Loudspeaker,
    SOUND_BAR,
    WEARABLE_SPEAKER,
)
from repro.acoustics.materials import GLASS_WINDOW, WOODEN_DOOR
from repro.acoustics.propagation import propagate
from repro.acoustics.spl import scale_to_spl
from repro.attacks.scenario import ThruBarrierChannel
from repro.channels import (
    AccelerometerStage,
    AirPropagationStage,
    BarrierStage,
    ChannelStage,
    ConductionStage,
    InjectionChannel,
    LoudspeakerStage,
    NonlinearDemodulationStage,
    PropagationChannel,
    SolidConductionStage,
    UltrasoundCarrierStage,
)
from repro.errors import ConfigurationError
from repro.sensing.accelerometer import Accelerometer, AccelerometerSpec
from repro.sensing.body_motion import body_motion_interference
from repro.sensing.conduction import ConductionPath
from repro.sensing.cross_domain import CrossDomainSensor
from repro.utils.rng import as_generator, child_rng

RATE = 16_000.0


def _speech_like(n: int, seed: int) -> np.ndarray:
    """Deterministic wideband test signal with speech-ish envelope."""
    rng = np.random.default_rng(seed)
    t = np.arange(n) / RATE
    tone = 0.4 * np.sin(2 * np.pi * 210.0 * t)
    tone += 0.2 * np.sin(2 * np.pi * 1450.0 * t + 0.3)
    noise = 0.05 * rng.standard_normal(n)
    envelope = 0.5 + 0.5 * np.sin(2 * np.pi * 2.5 * t) ** 2
    return (tone + noise) * envelope


class TestSensingChainParity:
    """CrossDomainSensor.convert == the pre-refactor inline chain."""

    def _manual_convert(self, audio, seed, include_body_motion):
        generator = as_generator(seed)
        played = Loudspeaker(WEARABLE_SPEAKER).play(audio, RATE)
        strap = ConductionPath().apply(
            played, RATE, rng=child_rng(generator, "strap")
        )
        vibration = Accelerometer(AccelerometerSpec()).sense(
            strap, RATE, audio, rng=child_rng(generator, "sense")
        )
        if include_body_motion:
            vibration = vibration + body_motion_interference(
                vibration.size,
                AccelerometerSpec().sample_rate,
                intensity=0.02,
                rng=child_rng(generator, "body"),
            )
        return vibration

    @pytest.mark.parametrize("include_body_motion", [False, True])
    def test_convert_bitwise(self, include_body_motion):
        audio = _speech_like(16_000, seed=0)
        sensor = CrossDomainSensor()
        got = sensor.convert(
            audio, RATE, rng=7, include_body_motion=include_body_motion
        )
        want = self._manual_convert(audio, 7, include_body_motion)
        np.testing.assert_array_equal(got, want)

    def test_convert_batch_bitwise(self):
        audios = [
            _speech_like(16_000, seed=1),
            _speech_like(8_000, seed=2),
            _speech_like(16_000, seed=3),
        ]
        sensor = CrossDomainSensor()
        batched = sensor.convert_batch(
            audios, RATE, rngs=[100, 101, 102], include_body_motion=True
        )
        for audio, seed, got in zip(audios, (100, 101, 102), batched):
            want = self._manual_convert(audio, seed, True)
            np.testing.assert_array_equal(got, want)

    def test_batch_composition_invariance(self):
        """Mixed-length batches match per-item sequential conversion."""
        audios = [
            _speech_like(n, seed=n)
            for n in (4_000, 16_000, 4_000, 12_000, 16_000)
        ]
        sensor = CrossDomainSensor()
        batched = sensor.convert_batch(
            audios, RATE, rngs=list(range(10, 15))
        )
        sequential = [
            sensor.convert(audio, RATE, rng=seed)
            for audio, seed in zip(audios, range(10, 15))
        ]
        for got, want in zip(batched, sequential):
            np.testing.assert_array_equal(got, want)


class TestThruBarrierParity:
    """ThruBarrierChannel.transmit == the pre-refactor inline chain."""

    def test_transmit_bitwise(self):
        waveform = _speech_like(12_000, seed=4)
        barrier = Barrier(GLASS_WINDOW)
        channel = ThruBarrierChannel(barrier=barrier)
        got = channel.transmit(
            waveform, RATE, spl_db=75.0, rng=as_generator(5)
        )
        calibrated = scale_to_spl(waveform, 75.0)
        played = Loudspeaker(SOUND_BAR).play(calibrated, RATE)
        want = Barrier(GLASS_WINDOW).transmit(
            played, RATE, rng=as_generator(5)
        )
        np.testing.assert_array_equal(got, want)

    def test_barrier_stage_thickness_scale(self):
        waveform = _speech_like(8_000, seed=5)
        stage = BarrierStage(material=WOODEN_DOOR, thickness_scale=2.0)
        got = stage.apply(waveform, RATE, rng=as_generator(9))
        want = Barrier(WOODEN_DOOR, thickness_scale=2.0).transmit(
            waveform, RATE, rng=as_generator(9)
        )
        np.testing.assert_array_equal(got, want)


class TestStageProtocol:
    def test_all_stages_satisfy_protocol(self):
        stages = [
            LoudspeakerStage(SOUND_BAR),
            BarrierStage(material=GLASS_WINDOW),
            AirPropagationStage(2.0),
            ConductionStage(),
            AccelerometerStage(),
            UltrasoundCarrierStage(),
            SolidConductionStage(),
            NonlinearDemodulationStage(),
        ]
        for stage in stages:
            assert isinstance(stage, ChannelStage)

    def test_air_propagation_matches_propagate(self):
        signal = _speech_like(6_000, seed=6)
        stage = AirPropagationStage(3.0)
        np.testing.assert_array_equal(
            stage.apply(signal, RATE), propagate(signal, RATE, 3.0)
        )

    def test_empty_channel_rejected(self):
        with pytest.raises(ConfigurationError):
            PropagationChannel(stages=())

    def test_non_stage_rejected(self):
        with pytest.raises(ConfigurationError):
            PropagationChannel(stages=(object(),))


class TestOutputRateFolding:
    def test_identity_for_audio_chain(self):
        channel = PropagationChannel(
            (LoudspeakerStage(SOUND_BAR), BarrierStage(material=GLASS_WINDOW))
        )
        assert channel.output_rate(RATE) == RATE

    def test_accelerometer_chain_ends_at_sensor_rate(self):
        sensor = CrossDomainSensor()
        assert sensor.vibration_rate == AccelerometerSpec().sample_rate
        assert sensor.channel.output_rate(RATE) == (
            AccelerometerSpec().sample_rate
        )

    def test_ultrasound_round_trip_rate(self):
        channel = PropagationChannel(
            (
                UltrasoundCarrierStage(),
                SolidConductionStage(),
                NonlinearDemodulationStage(),
            )
        )
        assert channel.output_rate(RATE) == RATE

    def test_carrier_above_nyquist_rejected(self):
        from repro.errors import SignalError

        stage = UltrasoundCarrierStage(carrier_hz=21_000.0, oversample=3)
        signal = _speech_like(4_000, seed=7)
        with pytest.raises(SignalError):
            stage.apply(signal, 8_000.0)  # 21 kHz >= 12 kHz Nyquist


class TestUltrasoundChain:
    def test_round_trip_preserves_length(self):
        channel = PropagationChannel(
            (
                UltrasoundCarrierStage(),
                SolidConductionStage(),
                NonlinearDemodulationStage(),
            )
        )
        for n in (4_000, 4_001, 12_345):
            out = channel.apply(_speech_like(n, seed=n), RATE)
            assert out.size == n

    def test_demodulation_recovers_message_band(self):
        """Square-law demodulation puts the message back in baseband."""
        channel = PropagationChannel(
            (
                UltrasoundCarrierStage(),
                SolidConductionStage(),
                NonlinearDemodulationStage(),
            )
        )
        t = np.arange(16_000) / RATE
        message = np.sin(2 * np.pi * 400.0 * t)
        out = channel.apply(message, RATE)
        spectrum = np.abs(np.fft.rfft(out))
        freqs = np.fft.rfftfreq(out.size, d=1.0 / RATE)
        peak_hz = freqs[int(np.argmax(spectrum[1:])) + 1]
        assert abs(peak_hz - 400.0) < 30.0

    def test_stage_batch_matches_sequential(self):
        stages = (
            UltrasoundCarrierStage(),
            SolidConductionStage(),
            NonlinearDemodulationStage(),
        )
        channel = PropagationChannel(stages)
        signals = [_speech_like(8_000, seed=s) for s in (20, 21, 22)]
        batched = channel.apply_batch(signals, RATE, rngs=[1, 2, 3])
        for signal, seed, got in zip(signals, (1, 2, 3), batched):
            want = channel.apply(signal, RATE, rng=seed)
            np.testing.assert_array_equal(got, want)


class TestInjectionChannel:
    def test_transmit_is_calibrate_then_apply(self):
        waveform = _speech_like(8_000, seed=8)
        channel = PropagationChannel(
            (UltrasoundCarrierStage(), NonlinearDemodulationStage())
        )
        injection = InjectionChannel(channel=channel)
        got = injection.transmit(waveform, RATE, spl_db=75.0, rng=3)
        want = channel.apply(scale_to_spl(waveform, 75.0), RATE, rng=3)
        np.testing.assert_array_equal(got, want)
