"""Quartile spectral statistics."""

import numpy as np
import pytest

from repro.dsp.generators import tone, white_noise
from repro.dsp.quantiles import spectral_quartile_profile
from repro.errors import ConfigurationError, SignalError

RATE = 200.0


def test_profile_shape():
    signals = [white_noise(0.5, RATE, rng=i) for i in range(5)]
    freqs, profile = spectral_quartile_profile(signals, RATE, 128)
    assert freqs.size == 65
    assert profile.shape == freqs.shape


def test_profile_peaks_at_shared_tone():
    signals = [
        tone(40.0, 0.64, RATE) + white_noise(0.64, RATE, 0.01, rng=i)
        for i in range(8)
    ]
    freqs, profile = spectral_quartile_profile(signals, RATE, 128)
    assert freqs[np.argmax(profile)] == pytest.approx(40.0, abs=2.0)


def test_quantile_ordering():
    signals = [white_noise(0.64, RATE, rng=i) for i in range(12)]
    _, q25 = spectral_quartile_profile(signals, RATE, 128, quantile=0.25)
    _, q75 = spectral_quartile_profile(signals, RATE, 128, quantile=0.75)
    assert np.all(q75 >= q25)


def test_rejects_empty_population():
    with pytest.raises(SignalError):
        spectral_quartile_profile([], RATE, 128)


@pytest.mark.parametrize("quantile", [0.0, 1.0, -0.5, 1.5])
def test_rejects_invalid_quantile(quantile):
    with pytest.raises(ConfigurationError):
        spectral_quartile_profile(
            [white_noise(0.1, RATE, rng=0)], RATE, 64, quantile=quantile
        )


def test_louder_population_has_higher_profile():
    quiet = [white_noise(0.64, RATE, 0.01, rng=i) for i in range(6)]
    loud = [white_noise(0.64, RATE, 0.1, rng=i) for i in range(6)]
    _, q_quiet = spectral_quartile_profile(quiet, RATE, 128)
    _, q_loud = spectral_quartile_profile(loud, RATE, 128)
    assert q_loud.mean() > 5 * q_quiet.mean()
