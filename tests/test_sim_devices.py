"""Protocol-node misuse and trace behaviour."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.sim.devices import CloudRelay, VANode, WearableNode
from repro.sim.events import EventScheduler
from repro.sim.network import Network, NetworkConfig
from repro.sim.protocol import RecordingMessage, TriggerMessage


@pytest.fixture()
def fabric():
    scheduler = EventScheduler()
    network = Network(
        scheduler,
        NetworkConfig(mean_delay_s=0.05, jitter_s=0.0),
        rng=0,
    )
    cloud = CloudRelay(network, scheduler)
    va = VANode(network, scheduler, recording_duration_s=0.5)
    wearable = WearableNode(network, scheduler,
                            recording_duration_s=0.5)
    return scheduler, network, cloud, va, wearable


def test_va_rejects_unexpected_messages(fabric):
    scheduler, network, cloud, va, wearable = fabric
    network.send("wearable", "va", "junk")
    with pytest.raises(ProtocolError):
        scheduler.run()


def test_wearable_rejects_unknown_payloads(fabric):
    scheduler, network, cloud, va, wearable = fabric
    network.send("va", "wearable", object())
    with pytest.raises(ProtocolError):
        scheduler.run()


def test_cloud_requires_routable_payloads(fabric):
    scheduler, network, cloud, va, wearable = fabric
    network.send("va", "cloud", "unroutable")
    with pytest.raises(ProtocolError):
        scheduler.run()


def test_cloud_forwards_trigger(fabric):
    scheduler, network, cloud, va, wearable = fabric
    message = TriggerMessage(forward_to="wearable", triggered_at_s=0.0)
    network.send("va", "cloud", message)
    scheduler.run(until_s=0.2)
    assert wearable.recording is not None


def test_full_handshake_produces_traces(fabric):
    scheduler, network, cloud, va, wearable = fabric
    field = np.random.default_rng(1).standard_normal(16_000) * 0.01

    def capture(start_s, stop_s):
        begin = int(start_s * 16_000)
        end = min(int(stop_s * 16_000), field.size)
        return field[begin:end].copy()

    va.set_capture(capture)
    wearable.set_capture(capture)
    va.wake_word_detected()
    scheduler.run()
    assert wearable.has_both_recordings
    assert any("relay" in line for line in cloud.log)
    assert any("aggregating" in line for line in wearable.log)
    # Two network hops of 0.05 s each.
    assert wearable.recording.started_at_s == pytest.approx(
        0.1, abs=0.01
    )


class TestRetransmission:
    def test_session_survives_lossy_network(self, rng):
        from repro.sim.network import NetworkConfig
        from repro.sim.protocol import run_synchronized_recording

        field = rng.standard_normal(32_000) * 0.01
        completed = 0
        for seed in range(8):
            try:
                run_synchronized_recording(
                    field, field.copy(), 16_000.0,
                    network_config=NetworkConfig(
                        drop_probability=0.3
                    ),
                    rng=seed,
                )
                completed += 1
            except Exception:
                pass
        # Retransmission recovers most sessions at 30 % loss.
        assert completed >= 6

    def test_duplicate_triggers_idempotent(self, fabric):
        scheduler, network, cloud, va, wearable = fabric
        va.set_capture(lambda s, e: np.zeros(10))
        wearable.set_capture(lambda s, e: np.zeros(10))
        from repro.sim.protocol import TriggerMessage

        message = TriggerMessage(forward_to="wearable",
                                 triggered_at_s=0.0)
        network.send("va", "cloud", message)
        network.send("va", "cloud", message)
        scheduler.run(until_s=1.0)
        assert any(
            "duplicate trigger" in line for line in wearable.log
        )

    def test_ack_stops_retransmission(self, fabric):
        scheduler, network, cloud, va, wearable = fabric
        va.set_capture(lambda s, e: np.zeros(10))
        wearable.set_capture(lambda s, e: np.zeros(10))
        va.wake_word_detected()
        scheduler.run()
        # With a healthy network, one attempt suffices.
        assert va.trigger_attempts == 1
        assert va.trigger_acked
        assert va.recording_acked

    def test_retries_bounded(self):
        from repro.sim.events import EventScheduler
        from repro.sim.network import Network, NetworkConfig
        from repro.sim.devices import CloudRelay, VANode, WearableNode

        scheduler = EventScheduler()
        network = Network(
            scheduler, NetworkConfig(drop_probability=1.0), rng=0
        )
        CloudRelay(network, scheduler)
        va = VANode(network, scheduler, recording_duration_s=0.2,
                    max_trigger_retries=2)
        WearableNode(network, scheduler, recording_duration_s=0.2)
        va.set_capture(lambda s, e: np.zeros(4))
        va.wake_word_detected()
        scheduler.run(until_s=10.0)
        assert va.trigger_attempts == 3  # initial + 2 retries
        assert not va.trigger_acked


def test_completion_callback_fires(fabric):
    scheduler, network, cloud, va, wearable = fabric
    va.set_capture(lambda s, e: np.zeros(10))
    wearable.set_capture(lambda s, e: np.zeros(10))
    fired = []
    wearable.on_complete = lambda node: fired.append(node.name)
    va.wake_word_detected()
    scheduler.run()
    assert fired == ["wearable"]
