"""Gradient-free optimizers: ask/tell, checkpointing, determinism."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.redteam.optimizers import (
    OPTIMIZERS,
    CmaEsOptimizer,
    RandomSearchOptimizer,
    default_popsize,
    make_optimizer,
    optimizer_from_state,
)
from repro.redteam.space import AttackSpace

SPACE = AttackSpace(n_bands=4, n_slices=2)


def _sphere(target):
    """Maximize -||θ - target||²: smooth, known optimum."""

    def objective(theta):
        return -float(np.sum((theta - target) ** 2))

    return objective


def _drive(optimizer, objective, generations):
    for _ in range(generations):
        candidates = optimizer.ask()
        optimizer.tell(
            candidates, [objective(c) for c in candidates]
        )


@pytest.mark.parametrize("mode", sorted(OPTIMIZERS))
def test_candidates_respect_bounds(mode):
    optimizer = make_optimizer(mode, SPACE, seed=1)
    for candidate in optimizer.ask():
        assert np.all(candidate <= SPACE.upper_bounds + 1e-12)
        assert np.all(candidate >= SPACE.lower_bounds - 1e-12)


@pytest.mark.parametrize("mode", sorted(OPTIMIZERS))
def test_same_seed_is_bitwise_deterministic(mode):
    objective = _sphere(np.full(SPACE.dimension, 2.0))
    a = make_optimizer(mode, SPACE, seed=9)
    b = make_optimizer(mode, SPACE, seed=9)
    _drive(a, objective, 3)
    _drive(b, objective, 3)
    assert a.best_score == b.best_score
    assert np.array_equal(a.best_params, b.best_params)


def test_cmaes_approaches_sphere_optimum():
    target = np.array([4.0, -3.0, 2.0, -1.0, 1.5, -2.5])
    optimizer = CmaEsOptimizer(SPACE, seed=3)
    _drive(optimizer, _sphere(target), 30)
    assert optimizer.best_score > -2.0  # started around -40


def test_cmaes_beats_random_search_on_smooth_objective():
    target = np.array([4.0, -3.0, 2.0, -1.0, 1.5, -2.5])
    cmaes = CmaEsOptimizer(SPACE, seed=3)
    random = RandomSearchOptimizer(
        SPACE, seed=3, popsize=cmaes.popsize
    )
    _drive(cmaes, _sphere(target), 20)
    _drive(random, _sphere(target), 20)
    assert cmaes.best_score > random.best_score


@pytest.mark.parametrize("mode", sorted(OPTIMIZERS))
def test_checkpoint_resume_is_bitwise_identical(mode):
    """to_state/from_state mid-run matches an uninterrupted run."""
    objective = _sphere(np.full(SPACE.dimension, 1.0))
    straight = make_optimizer(mode, SPACE, seed=5)
    _drive(straight, objective, 6)

    first = make_optimizer(mode, SPACE, seed=5)
    _drive(first, objective, 3)
    resumed = optimizer_from_state(first.to_state())
    _drive(resumed, objective, 3)

    assert resumed.generation == straight.generation
    assert resumed.best_score == straight.best_score
    assert np.array_equal(resumed.best_params, straight.best_params)
    # The next generation's candidates also match bitwise.
    assert all(
        np.array_equal(a, b)
        for a, b in zip(straight.ask(), resumed.ask())
    )


def test_cmaes_checkpoint_between_ask_and_tell_is_rejected():
    optimizer = CmaEsOptimizer(SPACE, seed=0)
    assert optimizer.can_checkpoint
    optimizer.ask()
    assert not optimizer.can_checkpoint
    with pytest.raises(ConfigurationError):
        optimizer.to_state()


def test_tell_validates_candidate_score_pairing():
    optimizer = RandomSearchOptimizer(SPACE, seed=0)
    candidates = optimizer.ask()
    with pytest.raises(ConfigurationError):
        optimizer.tell(candidates, [0.0])


def test_make_optimizer_rejects_unknown_mode():
    with pytest.raises(ConfigurationError):
        make_optimizer("gradient-descent", SPACE, seed=0)


def test_default_popsize_grows_with_dimension():
    assert default_popsize(4) < default_popsize(100)
    assert default_popsize(1) >= 4
