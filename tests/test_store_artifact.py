"""Artifact store: addressing, atomicity, integrity, maintenance."""

import io
import json
import os
import tarfile
import threading
import time

import pytest

from repro.errors import ArtifactIntegrityError, StoreError
from repro.store import (
    ArtifactKey,
    ArtifactStore,
    SCHEMA_VERSION,
    payload_checksum,
)


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def put_entry(store, kind="weights", fingerprint="abc123", payload=b"data"):
    key = ArtifactKey(kind, fingerprint)
    store.put(key, payload, meta={"seed": 1})
    return key


class TestArtifactKey:
    def test_str_is_the_cli_address(self):
        assert str(ArtifactKey("weights", "ff00")) == "weights/ff00"

    @pytest.mark.parametrize(
        "kind, fingerprint",
        [
            ("", "abc"),
            ("weights", ""),
            ("a/b", "abc"),
            ("weights", "a/b"),
            ("weights", ".."),
            ("we ights", "abc"),
            ("weights", "a\\b"),
        ],
    )
    def test_rejects_path_unsafe_parts(self, kind, fingerprint):
        with pytest.raises(StoreError):
            ArtifactKey(kind, fingerprint)


class TestPutGet:
    def test_round_trip(self, store):
        key = put_entry(store, payload=b"\x00\x01payload")
        assert store.contains(key)
        assert store.get(key) == b"\x00\x01payload"

    def test_miss_returns_none(self, store):
        assert store.get(ArtifactKey("weights", "missing")) is None
        assert not store.contains(ArtifactKey("weights", "missing"))

    def test_put_requires_bytes(self, store):
        with pytest.raises(StoreError, match="bytes"):
            store.put(ArtifactKey("weights", "abc"), "not-bytes")

    def test_put_replaces_existing_entry(self, store):
        key = put_entry(store, payload=b"old")
        store.put(key, b"new")
        assert store.get(key) == b"new"

    def test_info_reports_metadata(self, store):
        key = put_entry(store, payload=b"12345")
        info = store.info(key)
        assert info.key == key
        assert info.n_bytes == 5
        assert info.sha256 == payload_checksum(b"12345")
        assert info.meta == {"seed": 1}
        assert info.path == store.entry_dir(key)

    def test_entries_sorted_by_address(self, store):
        put_entry(store, "weights", "bbb")
        put_entry(store, "tables", "aaa")
        put_entry(store, "weights", "aaa")
        addresses = [str(info.key) for info in store.entries()]
        assert addresses == ["tables/aaa", "weights/aaa", "weights/bbb"]

    def test_delete(self, store):
        key = put_entry(store)
        assert store.delete(key)
        assert not store.contains(key)
        assert not store.delete(key)


class TestCorruption:
    """Invalid entries quarantine and report a miss — never crash."""

    def assert_quarantined_miss(self, store, key):
        assert store.get(key) is None
        assert not store.contains(key)
        assert len(store.quarantined()) == 1

    def test_flipped_payload_byte(self, store):
        key = put_entry(store, payload=b"payload-bytes")
        payload_path = store.entry_dir(key) / "payload.bin"
        raw = bytearray(payload_path.read_bytes())
        raw[0] ^= 0xFF
        payload_path.write_bytes(bytes(raw))
        self.assert_quarantined_miss(store, key)

    def test_truncated_payload(self, store):
        key = put_entry(store, payload=b"payload-bytes")
        payload_path = store.entry_dir(key) / "payload.bin"
        payload_path.write_bytes(payload_path.read_bytes()[:-3])
        self.assert_quarantined_miss(store, key)

    def test_missing_payload(self, store):
        key = put_entry(store)
        (store.entry_dir(key) / "payload.bin").unlink()
        self.assert_quarantined_miss(store, key)

    def test_wrong_schema_version(self, store):
        key = put_entry(store)
        meta_path = store.entry_dir(key) / "meta.json"
        record = json.loads(meta_path.read_text())
        record["schema_version"] = SCHEMA_VERSION + 41
        meta_path.write_text(json.dumps(record))
        self.assert_quarantined_miss(store, key)

    def test_unparseable_metadata(self, store):
        key = put_entry(store)
        (store.entry_dir(key) / "meta.json").write_text("{not json")
        self.assert_quarantined_miss(store, key)

    def test_metadata_missing_keys(self, store):
        key = put_entry(store)
        (store.entry_dir(key) / "meta.json").write_text("{}")
        self.assert_quarantined_miss(store, key)

    def test_metadata_address_mismatch(self, store):
        key = put_entry(store)
        meta_path = store.entry_dir(key) / "meta.json"
        record = json.loads(meta_path.read_text())
        record["fingerprint"] = "somebody-else"
        meta_path.write_text(json.dumps(record))
        self.assert_quarantined_miss(store, key)

    def test_quarantine_names_never_collide(self, store):
        for _ in range(3):
            key = put_entry(store)
            (store.entry_dir(key) / "meta.json").write_text("{}")
            assert store.get(key) is None
        assert len(store.quarantined()) == 3

    def test_healthy_entries_unaffected(self, store):
        bad = put_entry(store, fingerprint="bad")
        good = put_entry(store, fingerprint="good", payload=b"fine")
        (store.entry_dir(bad) / "meta.json").write_text("{}")
        assert store.get(bad) is None
        assert store.get(good) == b"fine"


class TestGetOrCreate:
    def test_miss_produces_and_publishes(self, store):
        key = ArtifactKey("weights", "abc")
        calls = []

        def produce():
            calls.append(1)
            return b"produced"

        payload, created = store.get_or_create(key, produce)
        assert (payload, created) == (b"produced", True)
        payload, created = store.get_or_create(key, produce)
        assert (payload, created) == (b"produced", False)
        assert len(calls) == 1

    def test_threads_racing_produce_once(self, store):
        key = ArtifactKey("weights", "contended")
        calls = []
        barrier = threading.Barrier(4)
        results = []

        def produce():
            calls.append(1)
            time.sleep(0.05)
            return b"expensive"

        def worker():
            barrier.wait()
            results.append(store.get_or_create(key, produce))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(calls) == 1
        assert sum(created for _, created in results) == 1
        assert {payload for payload, _ in results} == {b"expensive"}


class TestVerify:
    def test_reports_without_quarantining(self, store):
        good = put_entry(store, fingerprint="good")
        bad = put_entry(store, fingerprint="bad", payload=b"data")
        payload_path = store.entry_dir(bad) / "payload.bin"
        payload_path.write_bytes(b"tampered-data")
        report = dict(store.verify())
        assert report[good] is None
        assert "checksum" in report[bad] or "bytes" in report[bad]
        # verify() is read-only: the broken entry is still on disk.
        assert store.contains(bad)
        assert store.quarantined() == []


class TestGc:
    def age(self, store, key, seconds_ago):
        marker = store.entry_dir(key) / "last_used"
        stamp = time.time() - seconds_ago
        os.utime(marker, (stamp, stamp))

    def test_evicts_least_recently_used_first(self, store):
        oldest = put_entry(store, fingerprint="oldest")
        middle = put_entry(store, fingerprint="middle")
        newest = put_entry(store, fingerprint="newest")
        self.age(store, oldest, 300)
        self.age(store, middle, 200)
        self.age(store, newest, 100)
        evicted = store.gc(max_entries=1)
        assert [info.key for info in evicted] == [oldest, middle]
        assert store.contains(newest)

    def test_size_bound(self, store):
        first = put_entry(store, fingerprint="first", payload=b"x" * 100)
        second = put_entry(store, fingerprint="second", payload=b"y" * 100)
        self.age(store, first, 200)
        self.age(store, second, 100)
        evicted = store.gc(max_bytes=150)
        assert [info.key for info in evicted] == [first]
        assert store.contains(second)

    def test_no_bounds_is_a_no_op(self, store):
        put_entry(store)
        assert store.gc() == []
        assert len(store.entries()) == 1

    def test_rejects_negative_bounds(self, store):
        with pytest.raises(StoreError):
            store.gc(max_bytes=-1)
        with pytest.raises(StoreError):
            store.gc(max_entries=-1)

    def test_dry_run_reports_without_deleting(self, store):
        oldest = put_entry(store, fingerprint="oldest")
        newest = put_entry(store, fingerprint="newest")
        self.age(store, oldest, 200)
        self.age(store, newest, 100)
        planned = store.gc(max_entries=1, dry_run=True)
        assert [info.key for info in planned] == [oldest]
        # Nothing was actually removed.
        assert store.contains(oldest) and store.contains(newest)

    def test_dry_run_matches_real_eviction(self, store):
        keys = [
            put_entry(store, fingerprint=f"f{i}", payload=b"x" * 50)
            for i in range(4)
        ]
        for index, key in enumerate(keys):
            self.age(store, key, 400 - index * 100)
        planned = store.gc(max_bytes=120, dry_run=True)
        evicted = store.gc(max_bytes=120)
        assert [info.key for info in planned] == [
            info.key for info in evicted
        ]

    def test_cli_dry_run_prints_reclaimable_bytes_per_kind(
        self, store, capsys
    ):
        from repro.cli import main

        first = put_entry(
            store, kind="weights", fingerprint="w1", payload=b"x" * 80
        )
        put_entry(
            store, kind="selection", fingerprint="s1", payload=b"y" * 30
        )
        self.age(store, first, 300)
        self.age(store, ArtifactKey("selection", "s1"), 200)
        exit_code = main(
            [
                "store", "gc",
                "--dir", str(store.root),
                "--max-entries", "0",
                "--dry-run",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "would evict" in out
        assert "evicted " not in out.replace("would evict", "")
        assert "weights" in out and "80 reclaimable bytes" in out
        assert "selection" in out and "30 reclaimable bytes" in out
        assert "2 artifact(s), 110 reclaimable bytes" in out
        # Dry run deleted nothing.
        assert len(store.entries()) == 2


class TestExportImport:
    def test_round_trip(self, store, tmp_path):
        key = put_entry(store, payload=b"portable")
        archive = tmp_path / "artifacts.tgz"
        assert store.export_archive(archive) == [key]

        other = ArtifactStore(tmp_path / "other")
        assert other.import_archive(archive) == [key]
        assert other.get(key) == b"portable"
        assert other.info(key).meta == {"seed": 1}

    def test_kind_filter(self, store, tmp_path):
        put_entry(store, kind="weights")
        tables = put_entry(store, kind="tables", fingerprint="t1")
        archive = tmp_path / "tables.tgz"
        assert store.export_archive(archive, kinds=["tables"]) == [tables]

    def test_import_skips_existing_unless_overwrite(self, store, tmp_path):
        key = put_entry(store, payload=b"original")
        archive = tmp_path / "artifacts.tgz"
        store.export_archive(archive)
        store.put(key, b"changed")
        assert store.import_archive(archive) == []
        assert store.get(key) == b"changed"
        assert store.import_archive(archive, overwrite=True) == [key]
        assert store.get(key) == b"original"

    def test_corrupt_archive_member_raises(self, store, tmp_path):
        key = put_entry(store, payload=b"will-be-tampered")
        archive = tmp_path / "artifacts.tgz"
        store.export_archive(archive)
        # Rewrite the archive with a flipped payload byte but the
        # original metadata: the checksum no longer matches.
        tampered = tmp_path / "tampered.tgz"
        with tarfile.open(archive, "r:gz") as src, tarfile.open(
            tampered, "w:gz"
        ) as dst:
            for member in src.getmembers():
                data = src.extractfile(member).read()
                if member.name.endswith("payload.bin"):
                    data = bytes([data[0] ^ 0xFF]) + data[1:]
                member.size = len(data)
                dst.addfile(member, io.BytesIO(data))
        other = ArtifactStore(tmp_path / "other")
        with pytest.raises(ArtifactIntegrityError, match="checksum"):
            other.import_archive(tampered)
        assert not other.contains(key)

    def test_incomplete_archive_member_raises(self, store, tmp_path):
        put_entry(store)
        archive = tmp_path / "artifacts.tgz"
        store.export_archive(archive)
        partial = tmp_path / "partial.tgz"
        with tarfile.open(archive, "r:gz") as src, tarfile.open(
            partial, "w:gz"
        ) as dst:
            for member in src.getmembers():
                if member.name.endswith("meta.json"):
                    continue
                dst.addfile(
                    member, io.BytesIO(src.extractfile(member).read())
                )
        with pytest.raises(ArtifactIntegrityError, match="incomplete"):
            ArtifactStore(tmp_path / "other").import_archive(partial)

    def test_missing_archive_raises(self, store, tmp_path):
        with pytest.raises(StoreError, match="not found"):
            store.import_archive(tmp_path / "nope.tgz")
