"""Latency-adaptive micro-batching: controller decisions, scheduler
wiring, config plumbing, and the metrics/report surface."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.eval.reporting import format_service_metrics
from repro.serve import (
    BatchingConfig,
    BatchSizeController,
    MetricsCollector,
    MicroBatchScheduler,
    PipelineSpec,
    ServiceConfig,
    VerificationRequest,
    VerificationService,
)

RATE = 16_000.0


def adaptive_config(**overrides):
    overrides.setdefault("max_batch_size", 16)
    overrides.setdefault("p95_target_s", 0.1)
    overrides.setdefault("adapt_cooldown", 4)
    return BatchingConfig(**overrides)


class TestValidation:
    def test_non_positive_target_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchingConfig(p95_target_s=0.0)

    def test_min_above_max_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchingConfig(max_batch_size=4, min_batch_size=5)

    def test_bad_headroom_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchingConfig(p95_target_s=0.1, adapt_headroom=1.5)

    def test_controller_requires_target(self):
        with pytest.raises(ConfigurationError):
            BatchSizeController(BatchingConfig())

    def test_service_config_rejects_bad_target(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(p95_target_s=-0.1)


class TestController:
    def test_starts_at_max(self):
        controller = BatchSizeController(adaptive_config())
        assert controller.batch_size == 16

    def test_breach_halves_size(self):
        controller = BatchSizeController(adaptive_config())
        for _ in range(4):
            controller.observe(0.5)  # p95 far above the 0.1s target
        assert controller.batch_size == 8

    def test_sustained_breach_reaches_floor(self):
        controller = BatchSizeController(
            adaptive_config(min_batch_size=2)
        )
        for _ in range(64):
            controller.observe(0.5)
        assert controller.batch_size == 2

    def test_healthy_latency_grows_additively(self):
        config = adaptive_config(adapt_window=8)
        controller = BatchSizeController(config)
        for _ in range(16):
            controller.observe(0.5)  # shrink first
        shrunk = controller.batch_size
        for _ in range(8):
            controller.observe(0.01)  # flush the window with fast ones
        for _ in range(8):
            controller.observe(0.01)
        assert controller.batch_size > shrunk
        stats = controller.stats()
        assert stats.n_grow >= 1 and stats.n_shrink >= 1

    def test_holds_between_headroom_and_target(self):
        # p95 in (target * headroom, target]: neither grow nor shrink.
        config = adaptive_config(adapt_window=8, adapt_headroom=0.7)
        controller = BatchSizeController(config)
        for _ in range(8):
            controller.observe(0.09)  # fill the window: hold band
        size = controller.batch_size
        for _ in range(32):
            controller.observe(0.09)  # under target, above 0.07
        assert controller.batch_size == size == 16

    def test_cooldown_spaces_decisions(self):
        controller = BatchSizeController(
            adaptive_config(adapt_cooldown=8)
        )
        for _ in range(7):
            controller.observe(0.5)
        assert controller.stats().n_decisions == 0
        controller.observe(0.5)
        assert controller.stats().n_decisions == 1

    def test_never_leaves_bounds(self):
        config = adaptive_config(
            max_batch_size=8, min_batch_size=2, adapt_window=8
        )
        controller = BatchSizeController(config)
        latencies = np.random.default_rng(0).uniform(0.0, 0.4, 400)
        for latency in latencies:
            controller.observe(float(latency))
            assert 2 <= controller.batch_size <= 8


class TestSchedulerWiring:
    def test_fixed_mode_has_no_controller(self):
        scheduler = MicroBatchScheduler(BatchingConfig(max_batch_size=4))
        assert scheduler.controller is None
        assert scheduler.effective_batch_size == 4
        scheduler.observe_latency(9.9)  # must be a no-op
        assert scheduler.controller_stats() is None

    def test_effective_size_tracks_controller(self):
        scheduler = MicroBatchScheduler(adaptive_config())
        assert scheduler.effective_batch_size == 16
        for _ in range(8):
            scheduler.observe_latency(0.5)
        assert scheduler.effective_batch_size < 16

    def test_shrunk_size_forms_smaller_batches(self):
        scheduler = MicroBatchScheduler(
            adaptive_config(max_wait_s=10.0)
        )
        for _ in range(8):
            scheduler.observe_latency(0.5)  # two decisions: 16 -> 8 -> 4
        size = scheduler.effective_batch_size
        assert size == 4
        for index in range(size):
            scheduler.offer(index, key="a", now=0.0)
        batches = scheduler.ready_batches(now=0.0)
        assert len(batches) == 1
        assert len(batches[0]) == size
        assert batches[0].formed_reason == "full"


class TestServiceIntegration:
    def _request(self, seed):
        rng = np.random.default_rng(seed)
        va = rng.normal(0.0, 0.1, 16_000)
        wearable = 0.8 * va + rng.normal(0.0, 0.02, 16_000)
        return VerificationRequest(
            va_audio=va,
            wearable_audio=wearable,
            seed=seed,
            request_id=f"req-{seed}",
        )

    def test_adaptive_service_serves_and_reports(self):
        spec = PipelineSpec(use_segmenter=False)
        config = ServiceConfig(
            n_workers=1, max_batch_size=8, p95_target_s=30.0
        )
        with VerificationService(spec, config) as service:
            responses = [
                service.verify(self._request(seed)) for seed in range(6)
            ]
            metrics = service.metrics()
        assert all(r.status.value == "served" for r in responses)
        controller = metrics.batch_controller
        assert controller is not None
        assert 1 <= controller.batch_size <= 8
        report = format_service_metrics(metrics)
        assert "adaptive batching: size" in report

    def test_fixed_service_reports_no_controller(self):
        spec = PipelineSpec(use_segmenter=False)
        with VerificationService(
            spec, ServiceConfig(n_workers=1)
        ) as service:
            service.verify(self._request(1))
            metrics = service.metrics()
        assert metrics.batch_controller is None
        assert "adaptive batching" not in format_service_metrics(
            metrics
        )

    def test_verdicts_unchanged_by_adaptive_mode(self):
        # Batch size never affects verdicts (determinism contract), so
        # adaptive resizing must not either.
        spec = PipelineSpec(use_segmenter=False)
        fixed_config = ServiceConfig(n_workers=1)
        adaptive = ServiceConfig(
            n_workers=1, max_batch_size=8, p95_target_s=0.001
        )
        with VerificationService(spec, fixed_config) as service:
            baseline = [
                service.verify(self._request(seed)).verdict
                for seed in (7, 8, 9)
            ]
        with VerificationService(spec, adaptive) as service:
            steered = [
                service.verify(self._request(seed)).verdict
                for seed in (7, 8, 9)
            ]
        assert steered == baseline


class TestMetricsPlumbing:
    def test_snapshot_carries_controller_stats(self):
        controller = BatchSizeController(adaptive_config())
        for _ in range(8):
            controller.observe(0.5)
        snapshot = MetricsCollector().snapshot(
            batch_controller=controller.stats()
        )
        assert snapshot.batch_controller.n_shrink >= 1
        report = format_service_metrics(snapshot)
        assert "shrinks" in report

    def test_report_handles_empty_window(self):
        controller = BatchSizeController(adaptive_config())
        snapshot = MetricsCollector().snapshot(
            batch_controller=controller.stats()
        )
        assert "rolling p95 n/a" in format_service_metrics(snapshot)
