"""CLI entry points (fast commands only)."""

import pytest

from repro.cli import main


def test_select_command(capsys):
    exit_code = main(["select", "--segments", "8", "--seed", "42"])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "selected" in captured
    assert "rejected" in captured


def test_attack_study_command(capsys):
    exit_code = main(["attack-study", "--attempts", "3", "--seed", "5"])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "Google Home" in captured
    assert "iPhone" in captured


@pytest.mark.slow
def test_demo_command(capsys):
    exit_code = main(["demo", "--seed", "3"])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "attack detected" in captured


def test_serve_command(capsys):
    exit_code = main(
        [
            "serve",
            "--segmenter", "none",
            "--workers", "2",
            "--requests", "4",
            "--seed", "11",
        ]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "self-test: 4/4 served" in captured
    assert "p50 ms" in captured
    assert "queue-wait" in captured


def test_loadgen_command(capsys):
    exit_code = main(
        [
            "loadgen",
            "--segmenter", "none",
            "--workers", "2",
            "--requests", "8",
            "--concurrency", "4",
            "--seed", "11",
        ]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "loadgen[closed]: 8 issued, 8 served" in captured
    assert "latency p50/p95/p99" in captured


def test_fleet_loadgen_command(capsys):
    exit_code = main(
        [
            "fleet", "loadgen",
            "--engine", "sim",
            "--shards", "2",
            "--requests", "20",
            "--users", "1000",
            "--rate", "2000",
            "--queue-capacity", "64",
            "--seed", "7",
        ]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "fleet: 20 issued" in captured
    assert "latency p50/p95/p99" in captured
    assert "shard-0" in captured and "shard-1" in captured


def test_fleet_invalid_flags_exit_early():
    with pytest.raises(SystemExit) as excinfo:
        main(["fleet", "loadgen", "--shards", "0"])
    assert "error:" in str(excinfo.value)
    with pytest.raises(SystemExit) as excinfo:
        main(["fleet", "loadgen", "--rate", "0"])
    assert "error:" in str(excinfo.value)


@pytest.mark.parametrize(
    "flags",
    [
        ["--workers", "0"],
        ["--queue-capacity", "0"],
        ["--max-wait", "-0.5"],
        ["--batch-size", "0"],
        ["--deadline", "-1"],
        ["--policy", "block", "--max-wait", "-1"],
    ],
)
@pytest.mark.parametrize("command", ["serve", "loadgen"])
def test_serving_invalid_durations_exit_early(command, flags):
    """Bad bounds/durations die before any worker warms up."""
    with pytest.raises(SystemExit) as excinfo:
        main([command, "--segmenter", "none", *flags])
    assert "error:" in str(excinfo.value)


def test_loadgen_invalid_rate_exits():
    with pytest.raises(SystemExit) as excinfo:
        main(["loadgen", "--segmenter", "none", "--rate", "0"])
    assert "error:" in str(excinfo.value)


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["not-a-command"])


def test_help_exits_zero():
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
