"""CLI entry points (fast commands only)."""

import pytest

from repro.cli import main


def test_select_command(capsys):
    exit_code = main(["select", "--segments", "8", "--seed", "42"])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "selected" in captured
    assert "rejected" in captured


def test_attack_study_command(capsys):
    exit_code = main(["attack-study", "--attempts", "3", "--seed", "5"])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "Google Home" in captured
    assert "iPhone" in captured


@pytest.mark.slow
def test_demo_command(capsys):
    exit_code = main(["demo", "--seed", "3"])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "attack detected" in captured


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["not-a-command"])


def test_help_exits_zero():
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
