"""Corpus builder and aligned utterances."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phonemes.corpus import (
    PhonemeInterval,
    SyntheticCorpus,
    Utterance,
)


def test_phoneme_population_count(corpus):
    segments = corpus.phoneme_population("ae", 6, rng=0)
    assert len(segments) == 6
    assert all(segment.symbol == "ae" for segment in segments)


def test_population_rotates_speakers(corpus):
    segments = corpus.phoneme_population("ae", 8, rng=0)
    ids = {segment.speaker_id for segment in segments}
    assert len(ids) == len(corpus.speakers)


def test_population_fixed_duration(corpus):
    segments = corpus.phoneme_population("ae", 3, rng=0, duration_s=0.4)
    for segment in segments:
        assert segment.duration_s == pytest.approx(0.4, abs=0.01)


def test_population_rejects_zero(corpus):
    with pytest.raises(ConfigurationError):
        corpus.phoneme_population("ae", 0)


def test_phoneme_dataset_keys(corpus):
    dataset = corpus.phoneme_dataset(["ae", "s"], 2, rng=1)
    assert set(dataset) == {"ae", "s"}
    assert len(dataset["ae"]) == 2


def test_utterance_alignment_covers_waveform(corpus):
    utterance = corpus.utterance(["hh", "ey", "sp", "s", "ih", "r", "iy"],
                                 rng=2)
    assert utterance.alignment[0].start_s == 0.0
    assert utterance.alignment[-1].end_s == pytest.approx(
        utterance.duration_s, abs=1e-6
    )


def test_utterance_alignment_is_contiguous(corpus):
    utterance = corpus.utterance(["t", "er", "n", "sp", "aa", "n"], rng=3)
    for left, right in zip(utterance.alignment, utterance.alignment[1:]):
        assert right.start_s == pytest.approx(left.end_s, abs=1e-9)


def test_utterance_labels_at(corpus):
    utterance = corpus.utterance(["ae"], rng=4)
    mid = utterance.duration_s / 2
    assert utterance.labels_at(np.array([mid])) == ["ae"]
    assert utterance.labels_at(np.array([utterance.duration_s + 1])) == [
        "sil"
    ]


def test_utterance_rejects_empty_sequence(corpus):
    with pytest.raises(ConfigurationError):
        corpus.utterance([])


def test_utterance_rejects_unknown_symbol(corpus):
    with pytest.raises(ConfigurationError):
        corpus.utterance(["ae", "nope"])


def test_utterance_deterministic(corpus, male_speaker):
    a = corpus.utterance(["ae", "t"], speaker=male_speaker, rng=7)
    b = corpus.utterance(["ae", "t"], speaker=male_speaker, rng=7)
    np.testing.assert_array_equal(a.waveform, b.waveform)


def test_interval_validation():
    with pytest.raises(ConfigurationError):
        PhonemeInterval(symbol="ae", start_s=0.5, end_s=0.5)


def test_empty_speaker_pool_rejected():
    with pytest.raises(ConfigurationError):
        SyntheticCorpus(speakers=[])


class TestUtteranceCache:
    def test_integer_seed_with_speaker_is_cached(self, male_speaker):
        corpus = SyntheticCorpus(speakers=[male_speaker], seed=1)
        first = corpus.utterance(["ae", "t"], speaker=male_speaker, rng=7)
        second = corpus.utterance(["ae", "t"], speaker=male_speaker, rng=7)
        assert second is first
        assert corpus.cache_hits == 1
        assert corpus.cache_misses == 1

    def test_cached_result_matches_uncached_synthesis(self, male_speaker):
        cached = SyntheticCorpus(speakers=[male_speaker], seed=1)
        uncached = SyntheticCorpus(
            speakers=[male_speaker], seed=1, utterance_cache_size=0
        )
        cached.utterance(["ae", "t"], speaker=male_speaker, rng=7)
        a = cached.utterance(["ae", "t"], speaker=male_speaker, rng=7)
        b = uncached.utterance(["ae", "t"], speaker=male_speaker, rng=7)
        np.testing.assert_array_equal(a.waveform, b.waveform)
        assert a.alignment == b.alignment

    def test_different_seeds_are_distinct_entries(self, male_speaker):
        corpus = SyntheticCorpus(speakers=[male_speaker], seed=1)
        a = corpus.utterance(["ae"], speaker=male_speaker, rng=7)
        b = corpus.utterance(["ae"], speaker=male_speaker, rng=8)
        assert corpus.cache_hits == 0
        assert not np.array_equal(a.waveform, b.waveform)

    def test_generator_rng_bypasses_cache(self, male_speaker):
        corpus = SyntheticCorpus(speakers=[male_speaker], seed=1)
        corpus.utterance(
            ["ae"], speaker=male_speaker, rng=np.random.default_rng(7)
        )
        assert corpus.cache_hits == 0
        assert corpus.cache_misses == 0

    def test_lru_eviction(self, male_speaker):
        corpus = SyntheticCorpus(
            speakers=[male_speaker], seed=1, utterance_cache_size=2
        )
        for seed in (1, 2, 3):
            corpus.utterance(["ae"], speaker=male_speaker, rng=seed)
        # Seed 1 was evicted; seeds 2 and 3 are still resident.
        corpus.utterance(["ae"], speaker=male_speaker, rng=2)
        corpus.utterance(["ae"], speaker=male_speaker, rng=1)
        assert corpus.cache_hits == 1
        assert corpus.cache_misses == 4

    def test_invalid_cache_size(self, male_speaker):
        with pytest.raises(ConfigurationError):
            SyntheticCorpus(
                speakers=[male_speaker], utterance_cache_size=-1
            )
