"""Distance propagation and air absorption."""

import numpy as np
import pytest

from repro.acoustics.propagation import (
    air_absorption,
    propagate,
    spreading_gain,
)
from repro.dsp.generators import tone
from repro.errors import ConfigurationError

RATE = 16_000.0


def _rms(x):
    return float(np.sqrt(np.mean(x**2)))


def test_spreading_gain_inverse_distance():
    assert spreading_gain(2.0) == pytest.approx(0.5)
    assert spreading_gain(4.0) == pytest.approx(0.25)


def test_spreading_clamped_below_reference():
    assert spreading_gain(0.3) == 1.0


def test_spreading_rejects_nonpositive():
    with pytest.raises(ConfigurationError):
        spreading_gain(0.0)


def test_propagation_attenuates_with_distance():
    signal = tone(500.0, 0.5, RATE)
    near = propagate(signal, RATE, 1.0)
    far = propagate(signal, RATE, 4.0)
    assert _rms(far) == pytest.approx(_rms(near) / 4.0, rel=0.02)


def test_air_absorption_hits_high_frequencies_harder():
    freqs = np.array([100.0, 8000.0])
    gains = air_absorption(freqs, 10.0)
    assert gains[1] < gains[0]
    assert gains[0] > 0.99  # Negligible at 100 Hz over 10 m.


def test_propagation_delay_prepends_zeros():
    signal = tone(500.0, 0.1, RATE)
    delayed = propagate(signal, RATE, 3.43, include_delay=True)
    expected_delay = int(round(3.43 / 343.0 * RATE))
    assert delayed.size == signal.size + expected_delay
    assert np.all(delayed[: expected_delay // 2] == 0.0)


def test_propagation_without_delay_preserves_length():
    signal = tone(500.0, 0.1, RATE)
    assert propagate(signal, RATE, 2.0).size == signal.size
