"""StageEvent observability: emission, aggregation, sink parity."""

import numpy as np
import pytest

from repro.attacks.base import AttackKind
from repro.core.pipeline import (
    BatchAnalysisItem,
    DefensePipeline,
    PIPELINE_STAGES,
)
from repro.core.stages import (
    FALLBACK_DEADLINE_SKIP,
    FALLBACK_FULL_RECORDING,
)
from repro.errors import SignalError
from repro.eval.campaign import CampaignConfig, DetectorBank
from repro.eval.participants import ParticipantPool
from repro.eval.reporting import (
    format_runner_stats,
    format_service_metrics,
)
from repro.eval.rooms import ROOM_A
from repro.eval.runner import CampaignRunner
from repro.phonemes.corpus import SyntheticCorpus
from repro.runtime import (
    StageEvent,
    StageEventAggregator,
    capture_stage_events,
    emit_event,
)
from repro.serve.metrics import MetricsCollector
from repro.dsp.generators import white_noise

RATE = 16_000.0


@pytest.fixture()
def pipeline():
    return DefensePipeline(segmenter=None)


@pytest.fixture()
def recordings():
    rng = np.random.default_rng(5)
    burst = white_noise(1.0, RATE, amplitude=0.05, rng=rng)
    return burst, burst[400:].copy()


class _TinySegmenter:
    """Stub segmenter yielding one sub-millisecond segment."""

    def segments(self, audio):
        return [(0.0, 0.001)]


class TestPipelineEmission:
    def test_analyze_emits_every_stage_in_order(
        self, pipeline, recordings
    ):
        va, wearable = recordings
        with capture_stage_events() as captured:
            verdict, timings = pipeline.analyze_timed(
                va, wearable, rng=0
            )
        stages = [
            event.stage for event in captured.events
            if event.scope == "pipeline"
        ]
        assert tuple(stages) == PIPELINE_STAGES
        assert set(timings) == set(PIPELINE_STAGES)
        assert all(
            event.ok and event.wall_s >= 0.0
            for event in captured.events
        )

    def test_deadline_skip_annotation(self, pipeline, recordings):
        va, wearable = recordings
        with capture_stage_events() as captured:
            pipeline.analyze(va, wearable, rng=0, skip_segmentation=True)
        segment_events = [
            e for e in captured.events if e.stage == "segment"
        ]
        assert len(segment_events) == 1
        assert segment_events[0].fallback == FALLBACK_DEADLINE_SKIP

    def test_full_recording_annotation(self, recordings):
        va, wearable = recordings
        pipeline = DefensePipeline(segmenter=_TinySegmenter())
        with capture_stage_events() as captured:
            pipeline.analyze(va, wearable, rng=0)
        segment_events = [
            e for e in captured.events if e.stage == "segment"
        ]
        assert segment_events[0].fallback == FALLBACK_FULL_RECORDING

    def test_failing_stage_emits_error_event(self, pipeline):
        with capture_stage_events() as captured:
            with pytest.raises(SignalError):
                pipeline.analyze(np.zeros(0), np.zeros(0), rng=0)
        errors = [e for e in captured.events if e.error is not None]
        assert len(errors) == 1
        assert errors[0].error == "SignalError"
        assert not errors[0].ok

    def test_instance_sink_receives_events(self, recordings):
        va, wearable = recordings
        sink = StageEventAggregator()
        pipeline = DefensePipeline(segmenter=None, sink=sink)
        pipeline.analyze(va, wearable, rng=0)
        assert {e.stage for e in sink.events} == set(PIPELINE_STAGES)

    def test_instance_and_ambient_sink_no_double_delivery(self):
        sink = StageEventAggregator()
        event = StageEvent(stage="sync", wall_s=0.1)
        with capture_stage_events(sink):
            emit_event(event, sink=sink)
        assert len(sink.events) == 1

    def test_batch_outcomes_carry_events(self, pipeline, recordings):
        va, wearable = recordings
        items = [
            BatchAnalysisItem(va_audio=va, wearable_audio=wearable, rng=i)
            for i in range(2)
        ]
        outcomes = pipeline.analyze_batch(items)
        for outcome in outcomes:
            assert outcome.ok
            stages = {
                e.stage for e in outcome.events
                if e.scope == "pipeline"
            }
            assert stages == set(PIPELINE_STAGES)


class TestAggregator:
    def _events(self):
        return [
            StageEvent(stage="sync", wall_s=0.010),
            StageEvent(stage="sync", wall_s=0.030),
            StageEvent(
                stage="segment", wall_s=0.0, fallback="deadline-skip"
            ),
            StageEvent(stage="detect", wall_s=0.020, error="SignalError"),
        ]

    def test_timings_latest_ok_per_stage(self):
        aggregator = StageEventAggregator()
        for event in self._events():
            aggregator.emit(event)
        timings = aggregator.timings()
        assert timings["sync"] == 0.030
        assert "detect" not in timings  # errored events excluded

    def test_stage_totals_and_counts(self):
        aggregator = StageEventAggregator()
        for event in self._events():
            aggregator.emit(event)
        assert aggregator.stage_totals()["sync"] == pytest.approx(0.040)
        assert aggregator.fallback_counts() == {
            "segment:deadline-skip": 1
        }
        assert aggregator.error_counts() == {"detect:SignalError": 1}

    def test_summaries_use_shared_percentiles(self):
        aggregator = StageEventAggregator()
        for wall in (0.010, 0.020, 0.030):
            aggregator.emit(StageEvent(stage="sync", wall_s=wall))
        summary = aggregator.summarize()["sync"]
        assert summary.stage == "sync"
        assert summary.count == 3
        assert summary.p50_s == 0.020

    def test_events_are_picklable(self):
        import pickle

        event = StageEvent(
            stage="segment", wall_s=0.5, fallback="full-recording"
        )
        clone = pickle.loads(pickle.dumps(event))
        assert clone == event


@pytest.fixture(scope="module")
def campaign_stats():
    pool = ParticipantPool(n_participants=2, seed=41)
    detectors = DetectorBank(segmenter=None, include_baselines=False)
    config = CampaignConfig(
        n_commands_per_participant=1, n_attacks_per_kind=1, seed=42
    )
    corpus = SyntheticCorpus(speakers=pool.speakers, seed=config.seed)
    result = CampaignRunner(n_workers=1).run(
        [ROOM_A], pool, detectors, [AttackKind.REPLAY], config,
        corpus=corpus,
    )
    return result.stats


class TestSinkParity:
    """Acceptance: the same run's stage set must reach both reporting
    surfaces — serve metrics and campaign stats — identically."""

    def test_stage_set_parity_between_serve_and_eval(
        self, pipeline, recordings, campaign_stats
    ):
        va, wearable = recordings
        with capture_stage_events() as captured:
            _, timings = pipeline.analyze_timed(va, wearable, rng=0)
        collector = MetricsCollector()
        collector.record_served(
            total_s=sum(timings.values()),
            queue_wait_s=0.0,
            stage_timings_s=timings,
            degraded=False,
        )
        collector.record_stage_events(captured.events)
        snapshot = collector.snapshot()
        serve_stages = set(snapshot.stage_latency)
        eval_stages = set(campaign_stats.stage_totals)
        assert serve_stages == set(PIPELINE_STAGES)
        assert eval_stages == set(PIPELINE_STAGES)
        assert serve_stages == eval_stages

    def test_campaign_units_record_stage_seconds(self, campaign_stats):
        for unit in campaign_stats.units:
            assert set(unit.stage_s) == set(PIPELINE_STAGES)
            assert all(v >= 0.0 for v in unit.stage_s.values())

    def test_runner_stats_formatting_includes_stages(
        self, campaign_stats
    ):
        text = format_runner_stats(campaign_stats)
        assert "stages: " in text
        for stage in PIPELINE_STAGES:
            assert stage in text

    def test_service_metrics_formatting_includes_fallbacks(
        self, pipeline, recordings
    ):
        va, wearable = recordings
        with capture_stage_events() as captured:
            _, timings = pipeline.analyze_timed(
                va, wearable, rng=0, skip_segmentation=True
            )
        collector = MetricsCollector()
        collector.record_served(
            total_s=sum(timings.values()),
            queue_wait_s=0.0,
            stage_timings_s=timings,
            degraded=True,
        )
        collector.record_stage_events(captured.events)
        snapshot = collector.snapshot()
        assert snapshot.stage_fallbacks == {
            "segment:deadline-skip": 1
        }
        text = format_service_metrics(snapshot)
        assert "fallbacks: segment:deadline-skip x1" in text
