"""Named wearable profiles."""

import numpy as np
import pytest

from repro.dsp.generators import tone
from repro.errors import ConfigurationError
from repro.sensing.wearables import (
    FOSSIL_GEN_5,
    MOTO_360,
    WEARABLES,
    get_wearable,
)


def test_registry():
    assert set(WEARABLES) == {"fossil_gen_5", "moto_360"}


def test_get_wearable_unknown():
    with pytest.raises(ConfigurationError):
        get_wearable("apple_watch")


def test_profiles_build_sensors():
    for profile in WEARABLES.values():
        sensor = profile.make_sensor()
        assert sensor.vibration_rate == 200.0


def test_both_devices_sample_at_200hz():
    assert FOSSIL_GEN_5.accelerometer.sample_rate == 200.0
    assert MOTO_360.accelerometer.sample_rate == 200.0


def test_devices_differ_acoustically():
    audio = tone(1500.0, 1.0, 16_000.0, amplitude=0.1)
    fossil = FOSSIL_GEN_5.make_sensor().convert(audio, 16_000.0, rng=1)
    moto = MOTO_360.make_sensor().convert(audio, 16_000.0, rng=1)
    assert not np.allclose(fossil, moto)


def test_detection_works_on_both_devices(corpus, room_config):
    """The paper reports comparable performance on both wearables."""
    from repro.attacks import AttackScenario, ReplayAttack
    from repro.core.pipeline import DefensePipeline
    from repro.phonemes.commands import phonemize

    scenario = AttackScenario(room_config=room_config)
    victim = corpus.speakers[0]
    command = "alexa play my favorite playlist"
    utterance = corpus.utterance(
        phonemize(command), speaker=victim, rng=40
    )
    va_l, wear_l = scenario.legitimate_recordings(
        utterance, spl_db=70.0, rng=41
    )
    attack = ReplayAttack(corpus, victim).generate(
        command=command, rng=42
    )
    va_a, wear_a = scenario.attack_recordings(attack, spl_db=75.0,
                                              rng=43)
    for profile in (FOSSIL_GEN_5, MOTO_360):
        pipeline = DefensePipeline(
            segmenter=None, sensor=profile.make_sensor()
        )
        legit = pipeline.score(va_l, wear_l, rng=44)
        attacked = pipeline.score(va_a, wear_a, rng=45)
        assert legit > attacked + 0.2, profile.name
