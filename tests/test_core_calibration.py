"""Threshold calibration strategies."""

import numpy as np
import pytest

from repro.core.calibration import (
    CalibrationReport,
    calibrate_eer,
    calibrate_max_fdr,
    calibrate_min_tdr,
)
from repro.errors import CalibrationError


@pytest.fixture()
def separable_scores(rng):
    legit = rng.normal(0.7, 0.05, 100)
    attack = rng.normal(0.2, 0.05, 100)
    return legit, attack


@pytest.fixture()
def overlapping_scores(rng):
    legit = rng.normal(0.6, 0.1, 200)
    attack = rng.normal(0.4, 0.1, 200)
    return legit, attack


class TestEER:
    def test_separable_gives_perfect_rates(self, separable_scores):
        legit, attack = separable_scores
        report = calibrate_eer(legit, attack)
        assert report.expected_fdr == 0.0
        assert report.expected_tdr == 1.0
        assert 0.3 < report.threshold < 0.6

    def test_overlapping_balances_errors(self, overlapping_scores):
        legit, attack = overlapping_scores
        report = calibrate_eer(legit, attack)
        miss_rate = 1.0 - report.expected_tdr
        assert abs(report.expected_fdr - miss_rate) < 0.05

    def test_report_string(self, separable_scores):
        report = calibrate_eer(*separable_scores)
        assert "threshold" in str(report)
        assert isinstance(report, CalibrationReport)


class TestMaxFDR:
    def test_fdr_bound_respected(self, overlapping_scores):
        legit, attack = overlapping_scores
        for bound in (0.0, 0.02, 0.1):
            report = calibrate_max_fdr(legit, attack, max_fdr=bound)
            assert report.expected_fdr <= bound + 1e-12

    def test_zero_fdr_possible(self, separable_scores):
        legit, attack = separable_scores
        report = calibrate_max_fdr(legit, attack, max_fdr=0.0)
        assert report.expected_fdr == 0.0
        assert report.expected_tdr > 0.9  # still catches attacks

    def test_looser_bound_more_detection(self, overlapping_scores):
        legit, attack = overlapping_scores
        tight = calibrate_max_fdr(legit, attack, max_fdr=0.01)
        loose = calibrate_max_fdr(legit, attack, max_fdr=0.2)
        assert loose.expected_tdr >= tight.expected_tdr

    def test_invalid_bound(self, separable_scores):
        with pytest.raises(CalibrationError):
            calibrate_max_fdr(*separable_scores, max_fdr=1.5)


class TestMinTDR:
    def test_tdr_bound_respected(self, overlapping_scores):
        legit, attack = overlapping_scores
        for bound in (0.5, 0.9, 1.0):
            report = calibrate_min_tdr(legit, attack, min_tdr=bound)
            assert report.expected_tdr >= bound - 1e-12

    def test_stricter_bound_more_false_alarms(self,
                                              overlapping_scores):
        legit, attack = overlapping_scores
        loose = calibrate_min_tdr(legit, attack, min_tdr=0.5)
        strict = calibrate_min_tdr(legit, attack, min_tdr=0.99)
        assert strict.expected_fdr >= loose.expected_fdr

    def test_invalid_bound(self, separable_scores):
        with pytest.raises(CalibrationError):
            calibrate_min_tdr(*separable_scores, min_tdr=-0.1)


def test_empty_scores_rejected():
    with pytest.raises(CalibrationError):
        calibrate_eer([], [0.5])


def test_non_finite_rejected():
    with pytest.raises(CalibrationError):
        calibrate_max_fdr([0.5, np.inf], [0.1])
