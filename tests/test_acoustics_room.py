"""Room reverberation and ambient noise."""

import numpy as np
import pytest

from repro.acoustics.materials import GLASS_WINDOW
from repro.acoustics.room import Room, RoomConfig
from repro.acoustics.spl import spl_of
from repro.dsp.generators import tone
from repro.errors import ConfigurationError

RATE = 16_000.0


def _make_room(**overrides):
    params = dict(
        name="R", width_m=6.0, length_m=5.0, barrier=GLASS_WINDOW
    )
    params.update(overrides)
    return Room(RoomConfig(**params))


def test_mean_free_path_positive(room_config):
    assert room_config.mean_free_path_m > 0


def test_bigger_room_longer_mean_free_path():
    small = RoomConfig(name="s", width_m=3, length_m=3,
                       barrier=GLASS_WINDOW)
    big = RoomConfig(name="b", width_m=8, length_m=8,
                     barrier=GLASS_WINDOW)
    assert big.mean_free_path_m > small.mean_free_path_m


def test_reverb_changes_signal():
    # A steady tone can interfere destructively with its reflections, so
    # assert on a broadband burst instead: reflections must add energy.
    from repro.dsp.generators import white_noise

    room = _make_room(reflectivity=0.5)
    burst = np.concatenate(
        [white_noise(0.05, RATE, rng=9), np.zeros(int(0.2 * RATE))]
    )
    wet = room.add_reverberation(burst, RATE, rng=0)
    # Energy appears in the formerly silent tail (echoes).
    tail = slice(int(0.1 * RATE), None)
    assert np.sum(wet[tail] ** 2) > 10 * np.sum(burst[tail] ** 2)


def test_reverb_preserves_length():
    room = _make_room()
    signal = tone(500.0, 0.25, RATE)
    assert room.add_reverberation(signal, RATE, rng=0).size == signal.size


def test_more_reflective_room_is_wetter():
    from repro.dsp.generators import white_noise

    burst = np.concatenate(
        [white_noise(0.05, RATE, rng=9), np.zeros(int(0.2 * RATE))]
    )
    tail = slice(int(0.1 * RATE), None)
    dry = _make_room(reflectivity=0.1).add_reverberation(
        burst, RATE, rng=0
    )
    wet = _make_room(reflectivity=0.6).add_reverberation(
        burst, RATE, rng=0
    )
    assert np.sum(wet[tail] ** 2) > np.sum(dry[tail] ** 2)


def test_ambient_noise_level_calibrated():
    room = _make_room(ambient_noise_db=46.0)
    noise = room.ambient_noise(2.0, RATE, rng=1)
    assert spl_of(noise) == pytest.approx(46.0, abs=1.0)


def test_ambient_noise_reproducible():
    room = _make_room()
    np.testing.assert_array_equal(
        room.ambient_noise(0.2, RATE, rng=5),
        room.ambient_noise(0.2, RATE, rng=5),
    )


@pytest.mark.parametrize("reflectivity", [0.0, 1.0, -0.5])
def test_invalid_reflectivity(reflectivity):
    with pytest.raises(ConfigurationError):
        RoomConfig(
            name="bad", width_m=5, length_m=5, barrier=GLASS_WINDOW,
            reflectivity=reflectivity,
        )


def test_invalid_dimensions():
    with pytest.raises(ConfigurationError):
        RoomConfig(name="bad", width_m=0, length_m=5,
                   barrier=GLASS_WINDOW)
