"""Barrier transmission filter behaviour (Eq. (1), Fig. 3)."""

import numpy as np
import pytest

from repro.acoustics.barrier import Barrier
from repro.acoustics.materials import BRICK_WALL, GLASS_WINDOW
from repro.dsp.generators import tone
from repro.dsp.spectrum import band_energy

RATE = 16_000.0


@pytest.fixture()
def barrier():
    return Barrier(GLASS_WINDOW, resonance_db=0.0)


def _rms(x):
    return float(np.sqrt(np.mean(x**2)))


def test_low_frequency_mostly_survives(barrier):
    low = tone(200.0, 0.5, RATE)
    out = barrier.transmit(low, RATE)
    # Glass low-band loss is ~7 dB -> amplitude ratio ~0.45.
    assert 0.3 < _rms(out) / _rms(low) < 0.6


def test_high_frequency_mostly_blocked(barrier):
    high = tone(3000.0, 0.5, RATE)
    out = barrier.transmit(high, RATE)
    assert _rms(out) / _rms(high) < 0.05


def test_barrier_effect_shifts_spectrum_low(barrier):
    mixture = tone(200.0, 0.5, RATE) + tone(2000.0, 0.5, RATE)
    out = barrier.transmit(mixture, RATE)
    low_in = band_energy(mixture, RATE, 100.0, 400.0)
    high_in = band_energy(mixture, RATE, 1500.0, 2500.0)
    low_out = band_energy(out, RATE, 100.0, 400.0)
    high_out = band_energy(out, RATE, 1500.0, 2500.0)
    assert high_in / low_in > 20 * (high_out / low_out)


def test_brick_blocks_everything():
    barrier = Barrier(BRICK_WALL, resonance_db=0.0)
    signal = tone(200.0, 0.5, RATE) + tone(2000.0, 0.5, RATE)
    out = barrier.transmit(signal, RATE)
    assert _rms(out) < 0.02 * _rms(signal)


def test_thickness_scale_increases_loss():
    thin = Barrier(GLASS_WINDOW, thickness_scale=1.0, resonance_db=0.0)
    thick = Barrier(GLASS_WINDOW, thickness_scale=2.0, resonance_db=0.0)
    signal = tone(1000.0, 0.5, RATE)
    assert _rms(thick.transmit(signal, RATE)) < _rms(
        thin.transmit(signal, RATE)
    )


def test_resonance_ripple_varies_per_transmission():
    barrier = Barrier(GLASS_WINDOW, resonance_db=2.0)
    signal = tone(300.0, 0.5, RATE)
    a = barrier.transmit(signal, RATE, rng=1)
    b = barrier.transmit(signal, RATE, rng=2)
    assert not np.allclose(a, b)


def test_deterministic_without_ripple(barrier):
    signal = tone(300.0, 0.5, RATE)
    np.testing.assert_array_equal(
        barrier.transmit(signal, RATE), barrier.transmit(signal, RATE)
    )


def test_output_length_preserved(barrier):
    signal = tone(300.0, 0.313, RATE)
    assert barrier.transmit(signal, RATE).size == signal.size
