"""VA command corpus and phonemizer (Table II)."""

import pytest

from repro.errors import ConfigurationError
from repro.phonemes.commands import (
    LEXICON,
    PAPER_TABLE2_COUNTS,
    VA_COMMANDS,
    command_phoneme_counts,
    common_phonemes_from_corpus,
    phonemize,
)
from repro.phonemes.inventory import COMMON_PHONEMES, PHONEME_INVENTORY


def test_lexicon_symbols_valid():
    for word, symbols in LEXICON.items():
        for symbol in symbols:
            assert symbol in PHONEME_INVENTORY, (word, symbol)


def test_all_commands_phonemizable():
    for command in VA_COMMANDS:
        sequence = phonemize(command)
        assert len(sequence) > 3


def test_phonemize_inserts_word_pauses():
    sequence = phonemize("ok google")
    assert "sp" in sequence


def test_phonemize_rejects_unknown_word():
    with pytest.raises(ConfigurationError, match="lexicon"):
        phonemize("ok zorp")


def test_phonemize_rejects_empty():
    with pytest.raises(ConfigurationError):
        phonemize("   ")


def test_counts_exclude_pauses():
    counts = command_phoneme_counts()
    assert "sp" not in counts
    assert "sil" not in counts


def test_corpus_covers_exactly_the_37_common_phonemes():
    counts = command_phoneme_counts()
    assert set(counts) == set(COMMON_PHONEMES)


def test_paper_table2_reference():
    assert PAPER_TABLE2_COUNTS["t"] == 129
    assert PAPER_TABLE2_COUNTS["uh"] == 6
    assert len(PAPER_TABLE2_COUNTS) == 37


def test_common_phonemes_from_corpus_top_k():
    top5 = common_phonemes_from_corpus(top_k=5)
    assert len(top5) == 5
    counts = command_phoneme_counts()
    assert counts[top5[0]] == max(counts.values())


def test_corpus_frequency_correlates_with_paper():
    # Rank agreement between our corpus counts and Table II.
    counts = command_phoneme_counts()
    shared = sorted(set(counts) & set(PAPER_TABLE2_COUNTS))
    ours = [counts[s] for s in shared]
    paper = [PAPER_TABLE2_COUNTS[s] for s in shared]
    import numpy as np

    ours_rank = np.argsort(np.argsort(ours))
    paper_rank = np.argsort(np.argsort(paper))
    rho = np.corrcoef(ours_rank, paper_rank)[0, 1]
    assert rho > 0.5


def test_wake_words_present():
    lowered = [command.lower() for command in VA_COMMANDS]
    assert any("ok google" in command for command in lowered)
    assert any("alexa" in command for command in lowered)
    assert any("hey siri" in command for command in lowered)
