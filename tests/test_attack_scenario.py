"""Attack scenario plumbing: paired device recordings."""

import numpy as np
import pytest

from repro.acoustics.materials import BRICK_WALL, GLASS_WINDOW
from repro.acoustics.room import RoomConfig
from repro.attacks.replay import ReplayAttack
from repro.attacks.scenario import AttackScenario, ThruBarrierChannel
from repro.acoustics.barrier import Barrier
from repro.dsp.spectrum import band_energy
from repro.errors import ConfigurationError
from repro.phonemes.commands import phonemize

RATE = 16_000.0


@pytest.fixture(scope="module")
def scenario(room_config):
    return AttackScenario(room_config=room_config)


@pytest.fixture(scope="module")
def utterance(corpus):
    return corpus.utterance(
        phonemize("alexa what time is it"), rng=11
    )


class TestThruBarrierChannel:
    def test_barrier_shapes_spectrum(self, corpus):
        channel = ThruBarrierChannel(barrier=Barrier(GLASS_WINDOW))
        utterance = corpus.utterance(phonemize("play music"), rng=1)
        out = channel.transmit(utterance.waveform, RATE, spl_db=75.0,
                               rng=2)
        low = band_energy(out, RATE, 100.0, 450.0)
        high = band_energy(out, RATE, 1500.0, 3000.0)
        assert low > 5 * high

    def test_brick_blocks(self, corpus):
        glass = ThruBarrierChannel(barrier=Barrier(GLASS_WINDOW))
        brick = ThruBarrierChannel(barrier=Barrier(BRICK_WALL))
        utterance = corpus.utterance(phonemize("play music"), rng=1)
        out_glass = glass.transmit(utterance.waveform, RATE, 75.0, rng=2)
        out_brick = brick.transmit(utterance.waveform, RATE, 75.0, rng=2)
        assert np.sqrt(np.mean(out_brick**2)) < 0.2 * np.sqrt(
            np.mean(out_glass**2)
        )


class TestScenario:
    def test_legitimate_pair_shapes(self, scenario, utterance):
        va, wearable = scenario.legitimate_recordings(
            utterance, spl_db=70.0, rng=0
        )
        # The wearable misses the WiFi-delay head.
        assert wearable.size < va.size
        assert va.size > utterance.waveform.size  # lead/tail padding

    def test_attack_pair_generated(self, scenario, corpus, utterance):
        replay = ReplayAttack(corpus, corpus.speakers[0])
        attack = replay.generate(command="play music", rng=1)
        va, wearable = scenario.attack_recordings(
            attack, spl_db=75.0, rng=2
        )
        assert va.size > 0 and wearable.size > 0

    def test_attack_quieter_than_legit(self, scenario, corpus,
                                       utterance):
        va_legit, _ = scenario.legitimate_recordings(
            utterance, spl_db=70.0, rng=3
        )
        replay = ReplayAttack(corpus, corpus.speakers[0])
        attack = replay.generate(command="play music", rng=4)
        va_attack, _ = scenario.attack_recordings(attack, spl_db=70.0,
                                                  rng=5)
        assert np.sqrt(np.mean(va_attack**2)) < np.sqrt(
            np.mean(va_legit**2)
        )

    def test_wifi_delay_within_expectations(self, scenario, utterance):
        deltas = []
        for seed in range(6):
            va, wearable = scenario.legitimate_recordings(
                utterance, spl_db=70.0, rng=seed
            )
            deltas.append((va.size - wearable.size) / RATE)
        assert all(0.0 <= d <= 0.35 for d in deltas)
        assert np.mean(deltas) == pytest.approx(0.1, abs=0.06)

    def test_louder_attack_louder_recording(self, scenario, corpus):
        replay = ReplayAttack(corpus, corpus.speakers[0])
        attack = replay.generate(command="play music", rng=6)
        quiet, _ = scenario.attack_recordings(attack, spl_db=65.0, rng=7)
        loud, _ = scenario.attack_recordings(attack, spl_db=85.0, rng=7)
        assert np.sqrt(np.mean(loud**2)) > 2 * np.sqrt(
            np.mean(quiet**2)
        )

    def test_invalid_distance(self, room_config):
        with pytest.raises(ConfigurationError):
            AttackScenario(room_config=room_config, barrier_to_va_m=0.0)


class TestPerCallDistance:
    def test_override_matches_configured_scenario(self, room_config,
                                                  corpus):
        utterance = corpus.utterance(
            ["ae", "t"], speaker=corpus.speakers[0], rng=40
        )
        base = AttackScenario(room_config=room_config)
        configured = AttackScenario(
            room_config=room_config, user_to_va_m=3.0
        )
        va_override, wear_override = base.legitimate_recordings(
            utterance, spl_db=70.0, rng=41, user_to_va_m=3.0
        )
        va_config, wear_config = configured.legitimate_recordings(
            utterance, spl_db=70.0, rng=41
        )
        np.testing.assert_array_equal(va_override, va_config)
        np.testing.assert_array_equal(wear_override, wear_config)

    def test_override_does_not_mutate_scenario(self, room_config, corpus):
        utterance = corpus.utterance(
            ["ae", "t"], speaker=corpus.speakers[0], rng=42
        )
        scenario = AttackScenario(room_config=room_config)
        scenario.legitimate_recordings(
            utterance, spl_db=70.0, rng=43, user_to_va_m=3.0
        )
        assert scenario.user_to_va_m == 2.0

    def test_invalid_override_rejected(self, room_config, corpus):
        utterance = corpus.utterance(
            ["ae"], speaker=corpus.speakers[0], rng=44
        )
        scenario = AttackScenario(room_config=room_config)
        with pytest.raises(ConfigurationError):
            scenario.legitimate_recordings(
                utterance, spl_db=70.0, rng=45, user_to_va_m=0.0
            )
