"""STFT and spectrogram operations."""

import numpy as np
import pytest

from repro.dsp.generators import tone
from repro.dsp.stft import (
    crop_low_frequency_bins,
    power_spectrogram,
    stft,
    stft_frequencies,
    stft_times,
)
from repro.errors import ConfigurationError

RATE = 200.0


def test_stft_shape():
    signal = tone(30.0, 2.0, RATE)
    transform = stft(signal, n_fft=64, hop_length=32)
    assert transform.shape[0] == 33  # 64 // 2 + 1 bins


def test_power_spectrogram_nonnegative():
    signal = tone(30.0, 2.0, RATE)
    spec = power_spectrogram(signal, n_fft=64, hop_length=32)
    assert np.all(spec >= 0)


def test_spectrogram_peak_at_tone_frequency():
    signal = tone(40.0, 2.0, RATE)
    spec = power_spectrogram(signal, n_fft=64, hop_length=32)
    freqs = stft_frequencies(64, RATE)
    peak_bin = np.argmax(spec.mean(axis=1))
    assert freqs[peak_bin] == pytest.approx(40.0, abs=RATE / 64)


def test_stft_frequencies_range():
    freqs = stft_frequencies(64, RATE)
    assert freqs[0] == 0.0
    assert freqs[-1] == pytest.approx(RATE / 2)


def test_stft_times_spacing():
    times = stft_times(5, 32, RATE)
    assert times.shape == (5,)
    assert times[1] - times[0] == pytest.approx(32 / RATE)


def test_crop_low_frequency_bins():
    signal = tone(40.0, 2.0, RATE)
    spec = power_spectrogram(signal, n_fft=64, hop_length=32)
    cropped, freqs = crop_low_frequency_bins(spec, 64, RATE, 5.0)
    assert np.all(freqs > 5.0)
    assert cropped.shape[0] == freqs.size
    assert cropped.shape[0] < spec.shape[0]


def test_crop_rejects_mismatched_bins():
    with pytest.raises(ConfigurationError):
        crop_low_frequency_bins(np.zeros((10, 4)), 64, RATE, 5.0)


@pytest.mark.parametrize("n_fft,hop", [(0, 32), (64, 0)])
def test_stft_invalid_params(n_fft, hop):
    with pytest.raises(ConfigurationError):
        stft(tone(30.0, 1.0, RATE), n_fft=n_fft, hop_length=hop)
