"""Accelerometer model: aliasing, DC artifact, noise injection."""

import numpy as np
import pytest

from repro.dsp.generators import silence, tone
from repro.dsp.spectrum import fft_magnitude
from repro.errors import ConfigurationError
from repro.sensing.accelerometer import (
    Accelerometer,
    AccelerometerSpec,
)

AUDIO_RATE = 16_000.0


def _sense(accel, field, drive, rng=0):
    return accel.sense(field, AUDIO_RATE, drive_audio=drive, rng=rng)


def test_output_rate():
    accel = Accelerometer()
    field = tone(1000.0, 1.0, AUDIO_RATE)
    out = _sense(accel, field, field)
    assert out.size == 200


def test_aliasing_folds_content():
    # A 1250 Hz vibration folds to 50 Hz at 200 Hz sampling.
    spec = AccelerometerSpec(
        base_noise_rms=0.0, low_freq_noise_coeff=0.0,
        dc_sensitivity=0.0, lsb=0.0,
    )
    accel = Accelerometer(spec)
    field = tone(1250.0, 2.0, AUDIO_RATE, amplitude=0.1)
    out = _sense(accel, field, silence(2.0, AUDIO_RATE) + 0.0)
    freqs, mags = fft_magnitude(out, 200.0)
    assert freqs[np.argmax(mags)] == pytest.approx(50.0, abs=1.0)


def test_dc_artifact_follows_envelope():
    spec = AccelerometerSpec(
        base_noise_rms=0.0, low_freq_noise_coeff=0.0,
        dc_sensitivity=1.0, lsb=0.0,
    )
    accel = Accelerometer(spec)
    drive = tone(1000.0, 2.0, AUDIO_RATE, amplitude=0.2)
    out = _sense(accel, silence(2.0, AUDIO_RATE) + 0.0, drive)
    # With no field, the output is the near-DC envelope artifact.
    freqs, mags = fft_magnitude(out, 200.0)
    low_band = mags[freqs <= 5.0].sum()
    high_band = mags[freqs > 10.0].sum()
    # Onset/offset transients of the envelope leak a little upward.
    assert low_band > 1.5 * high_band


def test_low_frequency_drive_injects_noise():
    spec = AccelerometerSpec(
        base_noise_rms=0.0, dc_sensitivity=0.0, lsb=0.0
    )
    accel = Accelerometer(spec)
    field = silence(2.0, AUDIO_RATE) + 0.0
    low_drive = tone(200.0, 2.0, AUDIO_RATE, amplitude=0.2)
    high_drive = tone(3000.0, 2.0, AUDIO_RATE, amplitude=0.2)
    noisy = _sense(accel, field, low_drive, rng=1)
    quiet = _sense(accel, field, high_drive, rng=1)
    assert np.std(noisy) > 5 * np.std(quiet)


def test_noise_tracks_envelope_in_time():
    spec = AccelerometerSpec(
        base_noise_rms=0.0, dc_sensitivity=0.0, lsb=0.0
    )
    accel = Accelerometer(spec)
    # Low-frequency drive present only in the second half.
    half = tone(200.0, 1.0, AUDIO_RATE, amplitude=0.3)
    drive = np.concatenate([np.zeros(half.size), half])
    out = _sense(accel, np.zeros(drive.size), drive, rng=2)
    first, second = out[: out.size // 2], out[out.size // 2 :]
    assert np.std(second) > 5 * (np.std(first) + 1e-12)


def test_quantization_applied():
    spec = AccelerometerSpec(
        base_noise_rms=0.0, low_freq_noise_coeff=0.0,
        dc_sensitivity=0.0, lsb=1e-3,
    )
    accel = Accelerometer(spec)
    field = tone(30.0, 1.0, AUDIO_RATE, amplitude=0.01)
    out = _sense(accel, field, field)
    steps = np.round(out / 1e-3)
    np.testing.assert_allclose(out, steps * 1e-3, atol=1e-12)


def test_noise_reproducible_with_seed():
    accel = Accelerometer()
    field = tone(1000.0, 1.0, AUDIO_RATE)
    a = _sense(accel, field, field, rng=7)
    b = _sense(accel, field, field, rng=7)
    np.testing.assert_array_equal(a, b)


def test_invalid_spec_rejected():
    with pytest.raises(ConfigurationError):
        AccelerometerSpec(base_noise_rms=-1.0)
    with pytest.raises(ConfigurationError):
        AccelerometerSpec(sample_rate=0.0)
