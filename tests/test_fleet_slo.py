"""SLO machinery: rolling windows, shedding policy, autoscaler."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.fleet.slo import (
    Autoscaler,
    AutoscalerConfig,
    RollingLatencyWindow,
    ShardLoad,
    SheddingPolicy,
    SloConfig,
)


class TestRollingWindow:
    def test_empty_window_p95_is_nan(self):
        assert math.isnan(RollingLatencyWindow().p95())

    def test_rolls_off_old_samples(self):
        window = RollingLatencyWindow(window=4)
        for latency in (1.0, 1.0, 1.0, 1.0):
            window.record(latency)
        assert window.p95() == pytest.approx(1.0)
        for latency in (0.1, 0.1, 0.1, 0.1):
            window.record(latency)
        assert window.p95() == pytest.approx(0.1)
        assert len(window) == 4

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            RollingLatencyWindow(window=0)


def _warm(window, latency_s, n=30):
    for _ in range(n):
        window.record(latency_s)
    return window


class TestShedding:
    def test_sheds_low_priority_on_breach(self):
        config = SloConfig(target_p95_s=0.1, min_samples=20)
        policy = SheddingPolicy(config)
        window = _warm(RollingLatencyWindow(), 0.5)
        assert policy.should_shed(window, priority=0)

    def test_protected_priority_never_shed(self):
        config = SloConfig(target_p95_s=0.1, protected_priority=1)
        policy = SheddingPolicy(config)
        window = _warm(RollingLatencyWindow(), 0.5)
        assert not policy.should_shed(window, priority=1)
        assert not policy.should_shed(window, priority=5)

    def test_cold_window_never_sheds(self):
        config = SloConfig(target_p95_s=0.1, min_samples=20)
        policy = SheddingPolicy(config)
        window = _warm(RollingLatencyWindow(), 0.5, n=5)
        assert not policy.should_shed(window, priority=0)

    def test_healthy_window_never_sheds(self):
        policy = SheddingPolicy(SloConfig(target_p95_s=0.1))
        window = _warm(RollingLatencyWindow(), 0.01)
        assert not policy.should_shed(window, priority=0)

    def test_invalid_slo_config(self):
        for kwargs in (
            {"target_p95_s": 0.0},
            {"window": 0},
            {"min_samples": 0},
            {"retry_after_s": 0.0},
        ):
            with pytest.raises(ConfigurationError):
                SloConfig(**kwargs)


def _load(n_workers=1, queue_depth=0, p95=0.01, samples=50):
    return ShardLoad(
        n_workers=n_workers,
        queue_depth=queue_depth,
        rolling_p95_s=p95,
        window_samples=samples,
    )


class TestAutoscaler:
    def test_scales_up_on_backlog(self):
        scaler = Autoscaler(AutoscalerConfig(backlog_high=4.0))
        assert scaler.target_workers(
            _load(n_workers=1, queue_depth=10), now=0.0
        ) == 2

    def test_scales_up_on_p95_breach(self):
        scaler = Autoscaler(
            AutoscalerConfig(), SloConfig(target_p95_s=0.1)
        )
        assert scaler.target_workers(
            _load(n_workers=2, p95=0.5), now=0.0
        ) == 3

    def test_scales_down_when_idle_and_healthy(self):
        scaler = Autoscaler(
            AutoscalerConfig(backlog_low=0.5),
            SloConfig(target_p95_s=0.1),
        )
        assert scaler.target_workers(
            _load(n_workers=3, queue_depth=0, p95=0.01), now=0.0
        ) == 2

    def test_holds_inside_band(self):
        scaler = Autoscaler(
            AutoscalerConfig(backlog_low=0.5, backlog_high=4.0),
            SloConfig(target_p95_s=0.1),
        )
        assert scaler.target_workers(
            _load(n_workers=2, queue_depth=4, p95=0.08), now=0.0
        ) == 2

    def test_cooldown_spaces_decisions(self):
        scaler = Autoscaler(AutoscalerConfig(cooldown_s=2.0))
        load = _load(n_workers=1, queue_depth=10)
        assert scaler.target_workers(load, now=0.0) == 2
        # Inside the cooldown the scaler holds even under backlog.
        assert scaler.target_workers(load, now=1.0) == 1
        assert scaler.target_workers(load, now=2.5) == 2

    def test_one_step_at_a_time_and_bounds(self):
        scaler = Autoscaler(AutoscalerConfig(max_workers=4, cooldown_s=0.0))
        assert scaler.target_workers(
            _load(n_workers=1, queue_depth=100), now=0.0
        ) == 2
        assert scaler.target_workers(
            _load(n_workers=4, queue_depth=100), now=1.0
        ) == 4
        down = Autoscaler(
            AutoscalerConfig(min_workers=2, cooldown_s=0.0)
        )
        assert down.target_workers(
            _load(n_workers=2, queue_depth=0, p95=0.001), now=0.0
        ) == 2

    def test_cold_window_blocks_scale_down_not_up(self):
        scaler = Autoscaler(
            AutoscalerConfig(cooldown_s=0.0),
            SloConfig(min_samples=20),
        )
        # Cold window: p95 is untrusted, so idle alone may scale down
        # (p95_healthy is vacuous) but a p95 "breach" may not scale up.
        assert scaler.target_workers(
            _load(n_workers=2, queue_depth=0, p95=9.9, samples=3),
            now=0.0,
        ) == 1

    def test_invalid_autoscaler_config(self):
        for kwargs in (
            {"min_workers": 0},
            {"min_workers": 3, "max_workers": 2},
            {"backlog_high": 0.2, "backlog_low": 0.5},
            {"headroom": 0.0},
            {"cooldown_s": -1.0},
        ):
            with pytest.raises(ConfigurationError):
                AutoscalerConfig(**kwargs)
