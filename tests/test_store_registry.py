"""Model registry: load-or-train round trips, corruption fallbacks,
and the zero-training warm service start."""

import io

import numpy as np
import pytest

from repro.core.calibration import CalibrationReport
from repro.core.phoneme_selection import PhonemeSelectionConfig
from repro.core.pipeline import DefensePipeline
from repro.core.segmentation import (
    PhonemeSegmenter,
    SegmenterConfig,
    train_default_segmenter,
    training_run_count,
)
from repro.errors import ModelError
from repro.store import (
    ArtifactStore,
    KIND_SEGMENTER,
    ModelRegistry,
    registry_counters,
)
from repro.store import adapters

#: Tiny training recipe shared by the registry tests; cheap to train
#: and still exercises the full save/load format.
RECIPE = dict(n_speakers=2, n_per_phoneme=2, epochs=2)


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(tmp_path / "store")


def make_pair(seed, n_samples=8_000):
    rng = np.random.default_rng(seed)
    va = rng.normal(0.0, 0.1, n_samples)
    wearable = 0.8 * va + rng.normal(0.0, 0.02, n_samples)
    return va, wearable


class TestSegmenterArtifact:
    def test_first_call_trains_second_loads(self, registry):
        first, trained = registry.segmenter(seed=31, **RECIPE)
        assert trained
        second, trained = registry.segmenter(seed=31, **RECIPE)
        assert not trained
        assert first is not second

    def test_loaded_predictions_are_bitwise_identical(self, registry):
        trained_model, _ = registry.segmenter(seed=31, **RECIPE)
        loaded_model, _ = registry.segmenter(seed=31, **RECIPE)
        audio = np.random.default_rng(9).normal(0.0, 0.1, 16_000)
        np.testing.assert_array_equal(
            trained_model.frame_probabilities(audio),
            loaded_model.frame_probabilities(audio),
        )
        assert trained_model.segments(audio) == loaded_model.segments(
            audio
        )

    def test_different_recipes_get_different_entries(self, registry):
        registry.segmenter(seed=31, **RECIPE)
        _, trained = registry.segmenter(seed=32, **RECIPE)
        assert trained
        assert len(registry.store.entries()) == 2

    def test_store_loaded_pipeline_matches_fresh_training(self, registry):
        loaded_a, _ = registry.segmenter(seed=31, **RECIPE)
        loaded, _ = registry.segmenter(seed=31, **RECIPE)
        fresh = train_default_segmenter(seed=31, **RECIPE)
        va, wearable = make_pair(5)
        from_store = DefensePipeline(segmenter=loaded)
        from_training = DefensePipeline(segmenter=fresh)
        for rng_seed in (0, 1, 2):
            assert from_store.verify(
                va, wearable, rng=rng_seed
            ) == from_training.verify(va, wearable, rng=rng_seed)

    def test_undecodable_entry_quarantines_and_retrains(self, registry):
        registry.segmenter(seed=31, **RECIPE)
        store = registry.store
        (key,) = [info.key for info in store.entries()]
        # Valid checksum, garbage content: the read path accepts it and
        # the decode step must fall back.
        store.put(key, b"not an npz archive")
        before = training_run_count()
        model, _ = registry.segmenter(seed=31, **RECIPE)
        assert training_run_count() == before + 1
        assert len(store.quarantined()) == 1
        audio = np.random.default_rng(9).normal(0.0, 0.1, 8_000)
        assert model.frame_probabilities(audio).shape[0] > 0

    def test_checksum_corruption_retrains(self, registry):
        registry.segmenter(seed=31, **RECIPE)
        store = registry.store
        (info,) = store.entries()
        payload_path = info.path / "payload.bin"
        raw = bytearray(payload_path.read_bytes())
        raw[100] ^= 0xFF
        payload_path.write_bytes(bytes(raw))
        before = training_run_count()
        _, trained = registry.segmenter(seed=31, **RECIPE)
        assert trained
        assert training_run_count() == before + 1
        assert len(store.quarantined()) == 1
        # The retrained model was re-published and loads cleanly.
        _, trained = registry.segmenter(seed=31, **RECIPE)
        assert not trained

    def test_unusable_store_degrades_to_training(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file where the store root should be")
        registry = ModelRegistry(blocked / "store")
        model, trained = registry.segmenter(seed=31, **RECIPE)
        assert trained
        audio = np.random.default_rng(9).normal(0.0, 0.1, 8_000)
        assert model.frame_probabilities(audio).shape[0] > 0

    def test_counters_track_loads_and_trainings(self, registry):
        before = registry_counters()
        registry.segmenter(seed=31, **RECIPE)
        registry.segmenter(seed=31, **RECIPE)
        after = registry_counters()
        assert after["trained"] == before["trained"] + 1
        assert after["loaded"] == before["loaded"] + 1


class TestCalibrationArtifact:
    RECIPE = {"campaign_seed": 7, "strategy": "eer", "n_scores": 16}

    def report(self):
        return CalibrationReport(
            threshold=0.4375,
            expected_fdr=0.0625,
            expected_tdr=0.9375,
            strategy="equal error rate",
        )

    def test_round_trip_is_exact(self, registry):
        calls = []

        def produce():
            calls.append(1)
            return self.report()

        first, created = registry.calibration(self.RECIPE, produce)
        assert created
        second, created = registry.calibration(self.RECIPE, produce)
        assert not created
        assert len(calls) == 1
        assert second == self.report()
        assert second.threshold == first.threshold

    def test_recipe_is_the_identity(self, registry):
        registry.calibration(self.RECIPE, self.report)
        other = dict(self.RECIPE, campaign_seed=8)
        _, created = registry.calibration(other, self.report)
        assert created


class TestPhonemeTableArtifact:
    CONFIG = PhonemeSelectionConfig(n_segments=2)
    SYMBOLS = ("s", "ae")

    def test_round_trip_is_exact(self, registry):
        first, created = registry.phoneme_table(
            seed=13, config=self.CONFIG, symbols=self.SYMBOLS
        )
        assert created
        second, created = registry.phoneme_table(
            seed=13, config=self.CONFIG, symbols=self.SYMBOLS
        )
        assert not created
        assert second.selected == first.selected
        assert second.alpha == first.alpha
        for symbol in self.SYMBOLS:
            for field in (
                "q3_thru_barrier",
                "q3_direct",
                "frequencies",
            ):
                np.testing.assert_array_equal(
                    getattr(first.profiles[symbol], field),
                    getattr(second.profiles[symbol], field),
                )


class TestLoadWeightsValidation:
    """Satellite: load_weights must reject foreign architectures."""

    def trained_payload(self):
        model = train_default_segmenter(seed=31, **RECIPE)
        return adapters.encode_segmenter(model)

    def test_architecture_mismatch_raises_model_error(self):
        payload = self.trained_payload()
        narrow = PhonemeSegmenter(config=SegmenterConfig(hidden_dim=16))
        with pytest.raises(ModelError, match="hidden_dim"):
            narrow.load_weights(io.BytesIO(payload))

    def test_matching_architecture_loads(self):
        payload = self.trained_payload()
        segmenter = PhonemeSegmenter()
        segmenter.load_weights(io.BytesIO(payload))
        audio = np.random.default_rng(3).normal(0.0, 0.1, 8_000)
        assert segmenter.frame_probabilities(audio).shape[0] > 0

    def test_missing_feature_statistics_raise(self, tmp_path):
        model = train_default_segmenter(seed=31, **RECIPE)
        buffer = io.BytesIO()
        model.save(buffer)
        with np.load(io.BytesIO(buffer.getvalue())) as archive:
            arrays = {
                name: archive[name]
                for name in archive.files
                if name != "_feature_mean"
            }
        stripped = io.BytesIO()
        np.savez(stripped, **arrays)
        with pytest.raises(ModelError, match="_feature_mean"):
            PhonemeSegmenter().load_weights(
                io.BytesIO(stripped.getvalue())
            )


class TestZeroTrainingWarmStart:
    """A warm store turns service start into pure weight loads."""

    # Unique seed: must miss the in-process default_segmenter memo so
    # the store (not the memo) serves the warm start.
    SEED = 4711

    def test_thread_service_starts_without_training(self, tmp_path):
        from repro.serve import (
            PipelineSpec,
            ServiceConfig,
            VerificationRequest,
            VerificationService,
        )

        store_dir = tmp_path / "store"
        # Populate the store out-of-band (the registry bypasses the
        # in-process memo, so this is the only training run).
        ModelRegistry(store_dir).segmenter(seed=self.SEED, **RECIPE)
        spec = PipelineSpec(
            segmenter_seed=self.SEED,
            store_dir=str(store_dir),
            **RECIPE,
        )
        config = ServiceConfig(n_workers=2, worker_mode="thread")
        before = training_run_count()
        with VerificationService(spec, config) as service:
            va, wearable = make_pair(5)
            response = service.verify(
                VerificationRequest(
                    va_audio=va, wearable_audio=wearable, seed=0
                )
            )
        assert training_run_count() == before
        assert response.verdict is not None

    def test_store_backed_verdicts_match_no_store(self, tmp_path):
        """The store changes cost, never verdicts."""
        store_dir = tmp_path / "store"
        va, wearable = make_pair(5)
        with_store = DefensePipeline.warm(
            seed=self.SEED, store=str(store_dir), **RECIPE
        )
        fresh = DefensePipeline(
            segmenter=train_default_segmenter(seed=self.SEED, **RECIPE)
        )
        for rng_seed in (0, 1):
            assert with_store.verify(
                va, wearable, rng=rng_seed
            ) == fresh.verify(va, wearable, rng=rng_seed)
