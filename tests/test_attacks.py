"""Attack generators."""

import numpy as np
import pytest

from repro.attacks.base import AttackKind
from repro.attacks.hidden_voice import HiddenVoiceAttack
from repro.attacks.random_attack import RandomAttack
from repro.attacks.replay import ReplayAttack
from repro.attacks.synthesis import (
    VoiceSynthesisAttack,
    estimate_speaker,
)
from repro.dsp.spectrum import band_energy, band_energy_ratio
from repro.errors import ConfigurationError

RATE = 16_000.0


@pytest.fixture(scope="module")
def victim(corpus):
    return corpus.speakers[0]


@pytest.fixture(scope="module")
def adversary(corpus):
    return corpus.speakers[1]


class TestRandomAttack:
    def test_uses_adversary_voice(self, corpus, adversary):
        attack = RandomAttack(corpus, adversary).generate(rng=0)
        assert attack.kind is AttackKind.RANDOM
        assert attack.utterance.speaker_id == adversary.speaker_id

    def test_specified_command(self, corpus, adversary):
        attack = RandomAttack(corpus, adversary).generate(
            command="alexa what time is it", rng=1
        )
        assert "what time" in attack.description or (
            "what time" in attack.utterance.text
        )

    def test_rejects_empty_commands(self, corpus, adversary):
        with pytest.raises(ConfigurationError):
            RandomAttack(corpus, adversary, commands=[])


class TestReplayAttack:
    def test_uses_victim_voice(self, corpus, victim):
        attack = ReplayAttack(corpus, victim).generate(rng=0)
        assert attack.kind is AttackKind.REPLAY
        assert attack.utterance.speaker_id == victim.speaker_id

    def test_recording_adds_noise(self, corpus, victim):
        attack = ReplayAttack(corpus, victim).generate(
            command="alexa what time is it", rng=2
        )
        # The replayed waveform is a mic recording, not the raw clean
        # utterance.
        clean = attack.utterance.waveform
        n = min(clean.size, attack.waveform.size)
        assert not np.allclose(attack.waveform[:n], clean[:n])


class TestSynthesisAttack:
    def test_clones_victim_parameters(self, corpus, victim):
        attack_gen = VoiceSynthesisAttack(
            corpus, victim, n_enrollment=20, rng=0
        )
        clone = attack_gen.cloned_speaker
        assert clone.f0_hz == pytest.approx(victim.f0_hz, rel=0.05)
        assert clone.formant_scale == pytest.approx(
            victim.formant_scale, rel=0.05
        )

    def test_more_enrollment_tighter_estimate(self, corpus, victim):
        def error(n, seed):
            utterances = [
                corpus.utterance(["ae", "t"], speaker=victim,
                                 rng=100 + i)
                for i in range(n)
            ]
            estimate = estimate_speaker(utterances, victim, rng=seed)
            return abs(estimate.f0_hz - victim.f0_hz)

        small = np.mean([error(1, s) for s in range(20)])
        large = np.mean([error(25, s) for s in range(20)])
        assert large < small

    def test_flattened_prosody(self, corpus, victim):
        attack_gen = VoiceSynthesisAttack(corpus, victim, rng=1)
        assert attack_gen.cloned_speaker.jitter < victim.jitter + 1e-9

    def test_generates_sound(self, corpus, victim):
        attack = VoiceSynthesisAttack(corpus, victim, rng=2).generate(
            rng=3
        )
        assert attack.kind is AttackKind.SYNTHESIS
        assert np.sqrt(np.mean(attack.waveform**2)) > 0

    def test_enrollment_required(self, corpus, victim):
        with pytest.raises(ConfigurationError):
            VoiceSynthesisAttack(corpus, victim, n_enrollment=0)


class TestHiddenVoiceAttack:
    def test_wideband_content(self, corpus):
        attack = HiddenVoiceAttack(corpus).generate(rng=0)
        assert attack.kind is AttackKind.HIDDEN_VOICE
        # Hidden commands occupy 0-6 kHz: substantial energy above 3 kHz.
        ratio = band_energy_ratio(attack.waveform, RATE, 3000.0)
        assert ratio > 0.1

    def test_band_limited_at_6khz(self, corpus):
        attack = HiddenVoiceAttack(corpus).generate(rng=1)
        inside = band_energy(attack.waveform, RATE, 100.0, 6000.0)
        outside = band_energy(attack.waveform, RATE, 6800.0, 7900.0)
        assert inside > 50 * outside

    def test_noise_like_not_voice_like(self, corpus):
        attack = HiddenVoiceAttack(corpus).generate(rng=2)
        template = attack.utterance.waveform
        n = min(template.size, attack.waveform.size)
        correlation = np.corrcoef(
            attack.waveform[:n], template[:n]
        )[0, 1]
        assert abs(correlation) < 0.3

    def test_preserves_overall_level(self, corpus):
        attack = HiddenVoiceAttack(corpus).generate(rng=3)
        template_rms = np.sqrt(np.mean(attack.utterance.waveform**2))
        attack_rms = np.sqrt(np.mean(attack.waveform**2))
        assert attack_rms == pytest.approx(template_rms, rel=0.05)
