"""Top-level ThruBarrierDefense façade."""

import numpy as np
import pytest

from repro.core.segmentation import PhonemeSegmenter
from repro.core.system import CommandJudgement, ThruBarrierDefense
from repro.errors import CalibrationError, ConfigurationError


@pytest.fixture(scope="module")
def defense(corpus):
    segmenter = PhonemeSegmenter(rng=3)
    segmenter.train_on_phoneme_segments(
        corpus, n_per_phoneme=4, epochs=6, rng=4
    )
    return ThruBarrierDefense(seed=5, segmenter=segmenter)


@pytest.fixture(scope="module")
def recording_pair(corpus, room_config):
    from repro.attacks.scenario import AttackScenario
    from repro.phonemes.commands import phonemize

    scenario = AttackScenario(room_config=room_config)
    utterance = corpus.utterance(
        phonemize("alexa play my favorite playlist"),
        speaker=corpus.speakers[0],
        rng=6,
    )
    return scenario.legitimate_recordings(utterance, spl_db=70.0, rng=7)


class TestPolicy:
    def test_wearable_absent_rejected(self, defense):
        judgement = defense.judge(np.ones(100), None)
        assert not judgement.accepted
        assert "wearable absent" in judgement.reason

    def test_empty_wearable_recording_rejected(self, defense):
        judgement = defense.judge(np.ones(100), np.zeros(0))
        assert not judgement.accepted

    def test_missing_va_recording_rejected(self, defense,
                                           recording_pair):
        _, wearable = recording_pair
        judgement = defense.judge(None, wearable)
        assert not judgement.accepted

    def test_uncalibrated_system_refuses(self, defense,
                                         recording_pair):
        va, wearable = recording_pair
        assert not defense.is_calibrated
        judgement = defense.judge(va, wearable, rng=1)
        assert not judgement.accepted
        assert "not calibrated" in judgement.reason


class TestCalibration:
    def test_calibrate_eer(self, defense):
        report = defense.calibrate([0.8, 0.9, 0.7], [0.1, 0.2, 0.15])
        assert defense.is_calibrated
        assert 0.2 < report.threshold < 0.7

    def test_calibrate_max_fdr(self, defense):
        report = defense.calibrate(
            [0.8, 0.9, 0.7], [0.1, 0.2, 0.15], max_fdr=0.0
        )
        assert report.expected_fdr == 0.0

    def test_manual_threshold(self, defense):
        defense.set_threshold(0.45)
        assert defense.calibration.threshold == 0.45
        assert defense.calibration.strategy == "manual"

    def test_invalid_manual_threshold(self, defense):
        with pytest.raises(ConfigurationError):
            defense.set_threshold(2.0)

    def test_calibration_property_guard(self, corpus):
        segmenter = PhonemeSegmenter(rng=8)
        segmenter.train_on_phoneme_segments(
            corpus, n_per_phoneme=2, epochs=1, rng=9
        )
        fresh = ThruBarrierDefense(seed=10, segmenter=segmenter)
        with pytest.raises(CalibrationError):
            _ = fresh.calibration


class TestJudgement:
    def test_legitimate_command_accepted(self, defense,
                                         recording_pair):
        defense.set_threshold(0.45)
        va, wearable = recording_pair
        judgement = defense.judge(va, wearable, rng=11)
        assert isinstance(judgement, CommandJudgement)
        assert judgement.accepted
        assert judgement.score is not None

    def test_repeated_judging_accepts_legit(self, defense,
                                            recording_pair):
        defense.set_threshold(0.45)
        va, wearable = recording_pair
        judgement = defense.judge_repeated(
            [(va, wearable), (va, wearable)], rng=20
        )
        assert judgement.accepted
        assert "repetitions" in judgement.reason

    def test_repeated_judging_policy_propagates(self, defense):
        defense.set_threshold(0.45)
        judgement = defense.judge_repeated([(np.ones(10), None)],
                                           rng=21)
        assert not judgement.accepted
        assert "wearable absent" in judgement.reason

    def test_repeated_judging_needs_pairs(self, defense):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            defense.judge_repeated([])

    def test_attack_rejected(self, defense, corpus, room_config):
        from repro.attacks.replay import ReplayAttack
        from repro.attacks.scenario import AttackScenario

        defense.set_threshold(0.45)
        scenario = AttackScenario(room_config=room_config)
        attack = ReplayAttack(corpus, corpus.speakers[0]).generate(
            command="alexa play my favorite playlist", rng=12
        )
        va, wearable = scenario.attack_recordings(
            attack, spl_db=75.0, rng=13
        )
        judgement = defense.judge(va, wearable, rng=14)
        assert not judgement.accepted
        assert "attack detected" in judgement.reason
