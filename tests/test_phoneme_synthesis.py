"""Source-filter synthesis behaviour."""

import numpy as np
import pytest

from repro.dsp.spectrum import band_energy, fft_magnitude
from repro.phonemes.inventory import get_phoneme
from repro.phonemes.synthesis import (
    PhonemeSynthesizer,
    spectral_envelope,
)

RATE = 16_000.0


@pytest.fixture(scope="module")
def synth():
    return PhonemeSynthesizer()


def _rms(x):
    return float(np.sqrt(np.mean(x**2)))


def test_vowel_duration_matches_request(synth, male_speaker):
    sound = synth.synthesize("ae", male_speaker, duration_s=0.2, rng=0)
    assert sound.size == pytest.approx(0.2 * RATE, abs=8)


def test_vowel_has_harmonic_peak_at_f0(synth, male_speaker):
    sound = synth.synthesize("ae", male_speaker, duration_s=0.5, rng=1)
    freqs, mags = fft_magnitude(sound, RATE)
    voiced_band = (freqs > 60) & (freqs < 400)
    peak = freqs[voiced_band][np.argmax(mags[voiced_band])]
    # Peak should be near a harmonic of the speaker's F0.
    ratio = peak / male_speaker.f0_hz
    assert abs(ratio - round(ratio)) < 0.15


def test_female_voice_higher_pitch(synth, male_speaker, female_speaker):
    def pitch(speaker):
        sound = synth.synthesize("aa", speaker, duration_s=0.5, rng=2)
        freqs, mags = fft_magnitude(sound, RATE)
        band = (freqs > 60) & (freqs < 300)
        return freqs[band][np.argmax(mags[band])]

    assert pitch(female_speaker) > pitch(male_speaker)


def test_fricative_energy_in_noise_band(synth, male_speaker):
    sound = synth.synthesize("s", male_speaker, duration_s=0.3, rng=3)
    high = band_energy(sound, RATE, 4000.0, 7500.0)
    low = band_energy(sound, RATE, 100.0, 1000.0)
    assert high > 10 * low


def test_weak_phonemes_are_quieter_than_vowels(synth, male_speaker):
    vowel = synth.synthesize("ae", male_speaker, duration_s=0.3, rng=4)
    weak = synth.synthesize("s", male_speaker, duration_s=0.3, rng=4)
    assert _rms(weak) < 0.2 * _rms(vowel)


def test_loud_vowels_are_louder(synth, male_speaker):
    loud = synth.synthesize("aa", male_speaker, duration_s=0.3, rng=5)
    normal = synth.synthesize("ih", male_speaker, duration_s=0.3, rng=5)
    assert _rms(loud) > 1.5 * _rms(normal)


def test_silence_phonemes_near_zero(synth, male_speaker):
    sound = synth.synthesize("sp", male_speaker, duration_s=0.1, rng=6)
    assert _rms(sound) < 1e-4


def test_stop_has_burst_envelope(synth, male_speaker):
    sound = synth.synthesize("t", male_speaker, duration_s=0.06, rng=7)
    first_half = _rms(sound[: sound.size // 2])
    second_half = _rms(sound[sound.size // 2 :])
    assert first_half > 1.5 * second_half


def test_output_is_finite(synth, speakers):
    for speaker in speakers:
        for symbol in ("ae", "s", "t", "m", "hh", "jh"):
            sound = synth.synthesize(symbol, speaker, rng=8)
            assert np.all(np.isfinite(sound))


def test_spectral_envelope_peaks_at_formants(male_speaker):
    phoneme = get_phoneme("ae")
    freqs = np.linspace(50, 4000, 2000)
    envelope = spectral_envelope(phoneme, male_speaker, freqs)
    f1 = phoneme.formants[0] * male_speaker.formant_scale
    peak_freq = freqs[np.argmax(envelope)]
    assert peak_freq == pytest.approx(f1, rel=0.1)


def test_spectral_envelope_scales_with_speaker(female_speaker,
                                               male_speaker):
    phoneme = get_phoneme("iy")
    freqs = np.linspace(50, 4000, 4000)
    env_m = spectral_envelope(phoneme, male_speaker, freqs)
    env_f = spectral_envelope(phoneme, female_speaker, freqs)
    # Female formants sit higher in frequency.
    assert freqs[np.argmax(env_f)] > freqs[np.argmax(env_m)]


def test_reproducible_given_seed(synth, male_speaker):
    a = synth.synthesize("ae", male_speaker, duration_s=0.2, rng=42)
    b = synth.synthesize("ae", male_speaker, duration_s=0.2, rng=42)
    np.testing.assert_array_equal(a, b)


def test_different_seeds_differ(synth, male_speaker):
    a = synth.synthesize("ae", male_speaker, duration_s=0.2, rng=1)
    b = synth.synthesize("ae", male_speaker, duration_s=0.2, rng=2)
    assert not np.allclose(a, b)
