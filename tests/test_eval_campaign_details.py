"""Campaign machinery details (fast paths)."""

import pytest

from repro.attacks.base import AttackKind
from repro.errors import ConfigurationError
from repro.eval.campaign import (
    CampaignConfig,
    DetectorBank,
    ScoreSet,
    _make_attack_generators,
)
from repro.phonemes.corpus import SyntheticCorpus

import numpy as np


class TestCampaignConfig:
    def test_defaults_sane(self):
        config = CampaignConfig()
        assert config.attack_spl_db == 75.0
        assert config.barrier_to_va_m == 2.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_commands_per_participant": 0},
            {"n_attacks_per_kind": 0},
            {"user_distances_m": ()},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            CampaignConfig(**kwargs)


class TestAttackGeneratorFactory:
    def test_all_kinds_constructible(self, corpus):
        rng = np.random.default_rng(0)
        generators = _make_attack_generators(
            corpus,
            corpus.speakers[0],
            corpus.speakers[1],
            list(AttackKind),
            rng,
        )
        assert set(generators) == set(AttackKind)
        for kind, generator in generators.items():
            sound = generator.generate(rng=1)
            assert sound.kind is kind


class TestScoreSetDetails:
    def test_attack_buckets_isolated(self):
        scores = ScoreSet()
        scores.add_attack(AttackKind.REPLAY, {"d": 0.1})
        scores.add_attack(AttackKind.RANDOM, {"d": 0.2})
        assert scores.attacks[AttackKind.REPLAY]["d"] == [0.1]
        assert scores.attacks[AttackKind.RANDOM]["d"] == [0.2]

    def test_merge_disjoint_attacks(self):
        a = ScoreSet()
        a.add_attack(AttackKind.REPLAY, {"d": 0.1})
        b = ScoreSet()
        b.add_attack(AttackKind.HIDDEN_VOICE, {"d": 0.3})
        a.merge(b)
        assert set(a.attacks) == {
            AttackKind.REPLAY, AttackKind.HIDDEN_VOICE
        }


class TestScoreAll:
    def test_score_all_keys_match_names(self, corpus, room_config):
        from repro.attacks.scenario import AttackScenario
        from repro.phonemes.commands import phonemize

        scenario = AttackScenario(room_config=room_config)
        utterance = corpus.utterance(
            phonemize("play music"), rng=1
        )
        va, wearable = scenario.legitimate_recordings(
            utterance, spl_db=70.0, rng=2
        )
        bank = DetectorBank(segmenter=None)
        scores = bank.score_all(
            va, wearable, utterance, use_oracle=True, rng=3
        )
        assert set(scores) == set(bank.detector_names)
        for value in scores.values():
            assert -1.0 <= value <= 1.0
