"""Attack base types."""

import numpy as np

from repro.attacks.base import AttackKind, AttackSound


def test_attack_kinds_cover_threat_model():
    assert {kind.value for kind in AttackKind} == {
        "random", "replay", "synthesis", "hidden_voice"
    }


def test_attack_kind_roundtrip():
    for kind in AttackKind:
        assert AttackKind(kind.value) is kind


def test_attack_sound_fields():
    sound = AttackSound(
        kind=AttackKind.REPLAY,
        waveform=np.zeros(10),
        sample_rate=16_000.0,
        description="demo",
    )
    assert sound.utterance is None
    assert sound.kind is AttackKind.REPLAY
    assert sound.waveform.size == 10
