"""End-to-end defense pipeline behaviour (fast variants)."""

import numpy as np
import pytest

from repro.attacks.replay import ReplayAttack
from repro.attacks.scenario import AttackScenario
from repro.core.detector import DetectorConfig
from repro.core.pipeline import (
    DefenseConfig,
    DefensePipeline,
    DefenseVerdict,
)
from repro.core.baselines import (
    AudioDomainBaseline,
    VibrationBaselineNoSelection,
)
from repro.core.segmentation import PhonemeSegmenter
from repro.errors import ConfigurationError
from repro.phonemes.commands import phonemize


@pytest.fixture(scope="module")
def scenario(room_config):
    return AttackScenario(room_config=room_config)


@pytest.fixture(scope="module")
def legit_pair(scenario, corpus):
    utterance = corpus.utterance(
        phonemize("alexa play my favorite playlist"),
        speaker=corpus.speakers[0],
        rng=20,
    )
    va, wearable = scenario.legitimate_recordings(
        utterance, spl_db=70.0, rng=21
    )
    return utterance, va, wearable


@pytest.fixture(scope="module")
def attack_pair(scenario, corpus):
    replay = ReplayAttack(corpus, corpus.speakers[0])
    attack = replay.generate(
        command="alexa play my favorite playlist", rng=22
    )
    va, wearable = scenario.attack_recordings(attack, spl_db=75.0,
                                              rng=23)
    return attack, va, wearable


class TestPipeline:
    def test_verdict_fields(self, legit_pair):
        utterance, va, wearable = legit_pair
        pipeline = DefensePipeline(segmenter=PhonemeSegmenter(rng=0))
        verdict = pipeline.analyze(
            va, wearable, rng=0, oracle_utterance=utterance
        )
        assert isinstance(verdict, DefenseVerdict)
        assert -1.0 <= verdict.score <= 1.0
        assert verdict.is_attack is None  # no threshold configured
        assert verdict.analyzed_duration_s > 0
        assert verdict.sync_delay_s > 0

    def test_legit_scores_above_attack(self, legit_pair, attack_pair):
        pipeline = DefensePipeline(segmenter=PhonemeSegmenter(rng=0))
        utterance, va_l, wearable_l = legit_pair
        attack, va_a, wearable_a = attack_pair
        legit_score = pipeline.score(
            va_l, wearable_l, rng=1, oracle_utterance=utterance
        )
        attack_score = pipeline.score(
            va_a, wearable_a, rng=2,
            oracle_utterance=attack.utterance,
        )
        assert legit_score > attack_score + 0.2

    def test_threshold_produces_decision(self, legit_pair):
        utterance, va, wearable = legit_pair
        config = DefenseConfig(
            detector=DetectorConfig(threshold=0.45)
        )
        pipeline = DefensePipeline(
            segmenter=PhonemeSegmenter(rng=0), config=config
        )
        verdict = pipeline.analyze(
            va, wearable, rng=3, oracle_utterance=utterance
        )
        assert verdict.is_attack is False

    def test_no_segmenter_analyzes_full_recording(self, legit_pair):
        utterance, va, wearable = legit_pair
        pipeline = DefensePipeline(segmenter=None)
        verdict = pipeline.analyze(va, wearable, rng=4)
        assert verdict.n_segments == 0
        assert verdict.analyzed_duration_s == pytest.approx(
            min(va.size, wearable.size) / 16_000.0, rel=0.2
        )

    def test_deterministic_given_seed(self, legit_pair):
        utterance, va, wearable = legit_pair
        pipeline = DefensePipeline(segmenter=None)
        a = pipeline.score(va, wearable, rng=9)
        b = pipeline.score(va, wearable, rng=9)
        assert a == b

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            DefenseConfig(audio_rate=0.0)


class TestBaselines:
    def test_audio_baseline_scores(self, legit_pair, attack_pair):
        baseline = AudioDomainBaseline()
        _, va_l, wearable_l = legit_pair
        _, va_a, wearable_a = attack_pair
        legit = baseline.score(va_l, wearable_l)
        attack = baseline.score(va_a, wearable_a)
        assert -1.0 <= attack <= 1.0
        assert -1.0 <= legit <= 1.0

    def test_vibration_baseline_separates(self, legit_pair,
                                          attack_pair):
        baseline = VibrationBaselineNoSelection()
        _, va_l, wearable_l = legit_pair
        _, va_a, wearable_a = attack_pair
        legit = baseline.score(va_l, wearable_l, rng=5)
        attack = baseline.score(va_a, wearable_a, rng=6)
        assert legit > attack


class TestVerdictDelegation:
    """Pipeline verdicts must come from the detector's threshold rule."""

    def test_analyze_matches_detector_decide(self, legit_pair):
        _, va, wearable = legit_pair
        config = DefenseConfig(
            detector=DetectorConfig(threshold=0.4)
        )
        pipeline = DefensePipeline(segmenter=None, config=config)
        verdict = pipeline.analyze(va, wearable, rng=5)
        assert verdict.is_attack == pipeline.detector.decide(verdict.score)

    def test_analyze_matches_is_attack_boundary(self, legit_pair):
        _, va, wearable = legit_pair
        pipeline = DefensePipeline(segmenter=None)
        score = pipeline.score(va, wearable, rng=5)
        # Pin the threshold exactly at the observed score: the paper's
        # rule is "attack iff score < threshold", so sitting on the
        # boundary is legitimate — and pipeline and detector must agree.
        boundary = DefensePipeline(
            segmenter=None,
            config=DefenseConfig(
                detector=DetectorConfig(threshold=round(score, 6))
            ),
        )
        verdict = boundary.analyze(va, wearable, rng=5)
        assert verdict.is_attack == boundary.detector.decide(verdict.score)
