"""Per-user profiles: derivation determinism, LRU cache, store path."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.fleet.profiles import (
    ProfileCache,
    ProfileRecipe,
    UserProfile,
    derive_user_profile,
    registry_profile_loader,
)
from repro.phonemes.inventory import PAPER_SELECTED_PHONEMES
from repro.store import ModelRegistry


class TestDerivation:
    def test_deterministic_per_user(self):
        a = derive_user_profile("user-7")
        b = derive_user_profile("user-7")
        assert a == b

    def test_distinct_users_distinct_profiles(self):
        profiles = [
            derive_user_profile(f"user-{i}") for i in range(50)
        ]
        assert len({p.threshold for p in profiles}) > 40
        assert len({p.phonemes for p in profiles}) > 40

    def test_threshold_within_jitter_band(self):
        recipe = ProfileRecipe(
            base_threshold=0.3, threshold_jitter=0.05
        )
        for i in range(30):
            profile = derive_user_profile(f"user-{i}", recipe)
            assert 0.25 <= profile.threshold <= 0.35

    def test_phonemes_subset_of_paper_set(self):
        profile = derive_user_profile("user-3")
        assert len(profile.phonemes) == 24
        assert set(profile.phonemes) <= set(PAPER_SELECTED_PHONEMES)
        assert list(profile.phonemes) == sorted(profile.phonemes)

    def test_seed_changes_profiles(self):
        a = derive_user_profile("user-1", ProfileRecipe(seed=0))
        b = derive_user_profile("user-1", ProfileRecipe(seed=1))
        assert a != b

    def test_thresholdless_recipe(self):
        recipe = ProfileRecipe(base_threshold=None)
        profile = derive_user_profile("user-1", recipe)
        assert profile.threshold is None
        assert profile.decide(0.5) is None

    def test_decide_uses_personal_threshold(self):
        profile = UserProfile(
            user_id="u", threshold=0.2, phonemes=("aa",), seed=0
        )
        assert profile.decide(0.1) is True
        assert profile.decide(0.3) is False

    def test_dict_roundtrip(self):
        profile = derive_user_profile("user-9")
        assert UserProfile.from_dict(profile.to_dict()) == profile

    def test_malformed_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            UserProfile.from_dict({"user_id": "u"})

    def test_invalid_recipes_rejected(self):
        with pytest.raises(ConfigurationError):
            ProfileRecipe(phonemes_per_user=0)
        with pytest.raises(ConfigurationError):
            ProfileRecipe(threshold_jitter=-0.1)
        with pytest.raises(ConfigurationError):
            UserProfile(
                user_id="u", threshold=2.0, phonemes=(), seed=0
            )


class TestCache:
    def test_hit_miss_accounting(self):
        cache = ProfileCache(capacity=8)
        cache.get("user-1")
        cache.get("user-1")
        cache.get("user-2")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["size"] == 2

    def test_lru_evicts_coldest(self):
        cache = ProfileCache(capacity=2)
        cache.get("a")
        cache.get("b")
        cache.get("a")  # refresh a; b is now coldest
        cache.get("c")  # evicts b
        assert cache.stats()["evicted"] == 1
        loads = []
        cache._loader, original = (
            lambda user_id: loads.append(user_id)
            or derive_user_profile(user_id),
            cache._loader,
        )
        cache.get("a")
        cache.get("b")
        assert loads == ["b"]

    def test_thread_safety_under_contention(self):
        cache = ProfileCache(capacity=16)
        errors = []

        def worker(tag):
            try:
                for i in range(200):
                    profile = cache.get(f"user-{i % 32}")
                    assert profile.user_id == f"user-{i % 32}"
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 16

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            ProfileCache(capacity=0)


class TestRegistryPath:
    def test_profiles_persist_and_reload(self, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        loader = registry_profile_loader(registry)
        first = loader("user-5")
        assert first == derive_user_profile("user-5")
        # A second loader (another shard / process) reads the
        # published artifact rather than re-deriving.
        calls = []
        recipe = ProfileRecipe()

        def counting_producer():
            calls.append(1)
            return derive_user_profile("user-5", recipe).to_dict()

        document, created = ModelRegistry(str(tmp_path)).user_profile(
            "user-5", recipe.to_recipe_dict(), counting_producer
        )
        assert not created
        assert not calls
        assert UserProfile.from_dict(document) == first

    def test_recipe_is_part_of_identity(self, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        a = registry_profile_loader(
            registry, ProfileRecipe(seed=0)
        )("user-1")
        b = registry_profile_loader(
            registry, ProfileRecipe(seed=1)
        )("user-1")
        assert a != b
