"""Mel filterbanks and MFCC."""

import numpy as np
import pytest

from repro.dsp.generators import tone, white_noise
from repro.dsp.mel import hz_to_mel, mel_filterbank, mel_to_hz, mfcc
from repro.errors import ConfigurationError

RATE = 16_000.0


def test_mel_roundtrip():
    freqs = np.array([0.0, 100.0, 900.0, 4000.0])
    np.testing.assert_allclose(mel_to_hz(hz_to_mel(freqs)), freqs,
                               rtol=1e-10)


def test_mel_is_monotonic():
    freqs = np.linspace(0, 8000, 100)
    mels = hz_to_mel(freqs)
    assert np.all(np.diff(mels) > 0)


def test_filterbank_shape():
    bank = mel_filterbank(40, 512, RATE, high_hz=900.0)
    assert bank.shape == (40, 257)


def test_filterbank_nonnegative_and_bounded():
    bank = mel_filterbank(20, 512, RATE)
    assert np.all(bank >= 0)
    assert np.all(bank <= 1.0 + 1e-12)


def test_filterbank_restricted_band_has_no_energy_above():
    bank = mel_filterbank(40, 512, RATE, high_hz=900.0)
    freqs = np.fft.rfftfreq(512, d=1.0 / RATE)
    above = freqs > 1000.0
    assert bank[:, above].sum() == 0.0


def test_filterbank_invalid_band():
    with pytest.raises(ConfigurationError):
        mel_filterbank(40, 512, RATE, low_hz=1000.0, high_hz=500.0)


def test_mfcc_shape_matches_paper_config():
    # 1 s at 16 kHz, 25 ms frames, 10 ms hop -> ~98-100 frames, 14 coeffs.
    signal = white_noise(1.0, RATE, rng=0)
    coefficients = mfcc(signal, RATE)
    assert coefficients.shape[1] == 14
    assert 95 <= coefficients.shape[0] <= 101


def test_mfcc_distinguishes_tone_from_noise():
    tone_coeffs = mfcc(tone(300.0, 0.5, RATE), RATE).mean(axis=0)
    noise_coeffs = mfcc(white_noise(0.5, RATE, rng=1), RATE).mean(axis=0)
    assert not np.allclose(tone_coeffs, noise_coeffs, atol=0.5)


def test_mfcc_invalid_order():
    with pytest.raises(ConfigurationError):
        mfcc(tone(300.0, 0.2, RATE), RATE, n_mfcc=50, n_filters=40)


def test_mfcc_deterministic():
    signal = tone(300.0, 0.3, RATE)
    np.testing.assert_array_equal(mfcc(signal, RATE), mfcc(signal, RATE))
