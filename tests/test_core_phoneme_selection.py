"""Phoneme-selection unit behaviour (fast paths).

The full 37-phoneme selection is exercised by
``benchmarks/bench_table2_common_phonemes.py``; these tests cover the
machinery on small phoneme subsets.
"""

import numpy as np
import pytest

from repro.core.phoneme_selection import (
    PhonemeProfile,
    PhonemeSelectionConfig,
    PhonemeSelector,
)
from repro.errors import ConfigurationError


class TestConfig:
    def test_defaults_follow_paper_protocol(self):
        config = PhonemeSelectionConfig()
        assert config.playback_spl_db == 75.0
        assert config.playback_spl_db_high == 85.0
        assert config.barrier_to_mic_m == 2.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"n_segments": 0},
            {"band_low_hz": 50.0, "band_high_hz": 40.0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ConfigurationError):
            PhonemeSelectionConfig(**kwargs)


class TestProfile:
    def test_statistics(self):
        profile = PhonemeProfile(
            symbol="ae",
            frequencies=np.array([20.0, 40.0]),
            q3_thru_barrier=np.array([0.001, 0.004]),
            q3_direct=np.array([0.03, 0.02]),
        )
        assert profile.max_thru_barrier() == 0.004
        assert profile.min_direct() == 0.02


class TestSelectorSubset:
    @pytest.fixture(scope="class")
    def result(self, corpus):
        selector = PhonemeSelector(
            corpus=corpus,
            config=PhonemeSelectionConfig(n_segments=8),
            seed=5,
        )
        return selector.run(["ae", "er", "s", "aa"])

    def test_sensitive_vowels_selected(self, result):
        assert "ae" in result.selected
        assert "er" in result.selected

    def test_weak_fricative_rejected_via_criterion_2(self, result):
        assert "s" not in result.selected
        assert "s" in result.satisfies_criterion_1  # quiet thru barrier
        assert "s" not in result.satisfies_criterion_2

    def test_loud_vowel_rejected_via_criterion_1(self, result):
        assert "aa" not in result.selected
        assert "aa" not in result.satisfies_criterion_1

    def test_rejected_property(self, result):
        assert set(result.rejected) == {"s", "aa"}

    def test_profiles_present_for_all(self, result):
        assert set(result.profiles) == {"ae", "er", "s", "aa"}
        for profile in result.profiles.values():
            assert profile.frequencies.size > 0
            assert np.all(profile.q3_direct >= 0)
