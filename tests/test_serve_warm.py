"""Warm segmenter path: cached training, unchanged scores, timings."""

import numpy as np
import pytest

from repro.core.pipeline import (
    PIPELINE_STAGES,
    DefensePipeline,
)
from repro.core.segmentation import (
    default_segmenter,
    train_default_segmenter,
)

RECIPE = dict(n_speakers=2, n_per_phoneme=2, epochs=2)


def make_pair(seed, n_samples=8_000):
    rng = np.random.default_rng(seed)
    va = rng.normal(0.0, 0.1, n_samples)
    wearable = 0.8 * va + rng.normal(0.0, 0.02, n_samples)
    return va, wearable


class TestWarmSegmenterCache:
    def test_repeated_calls_share_one_instance(self):
        first = default_segmenter(seed=31, **RECIPE)
        second = default_segmenter(seed=31, **RECIPE)
        assert first is second

    def test_different_recipes_do_not_collide(self):
        base = default_segmenter(seed=31, **RECIPE)
        other_seed = default_segmenter(seed=32, **RECIPE)
        other_size = default_segmenter(
            seed=31, n_speakers=3, n_per_phoneme=2, epochs=2
        )
        assert base is not other_seed
        assert base is not other_size

    def test_warm_scores_match_fresh_training(self):
        """Regression pin: the warm path changes cost, never scores."""
        va, wearable = make_pair(5)
        warm = DefensePipeline.warm(seed=31, **RECIPE)
        fresh = DefensePipeline(
            segmenter=train_default_segmenter(seed=31, **RECIPE)
        )
        for rng_seed in (0, 1, 2):
            assert warm.verify(va, wearable, rng=rng_seed) == fresh.verify(
                va, wearable, rng=rng_seed
            )

    def test_warm_pipelines_share_segmenter(self):
        first = DefensePipeline.warm(seed=31, **RECIPE)
        second = DefensePipeline.warm(seed=31, **RECIPE)
        assert first.segmenter is second.segmenter


class TestVerifyAlias:
    def test_verify_is_analyze(self):
        va, wearable = make_pair(6)
        pipeline = DefensePipeline(segmenter=None)
        assert pipeline.verify(va, wearable, rng=3) == pipeline.analyze(
            va, wearable, rng=3
        )


class TestAnalyzeTimed:
    def test_reports_every_stage(self):
        va, wearable = make_pair(7)
        pipeline = DefensePipeline(segmenter=None)
        verdict, timings = pipeline.analyze_timed(va, wearable, rng=4)
        assert set(timings) == set(PIPELINE_STAGES)
        assert all(seconds >= 0 for seconds in timings.values())
        assert verdict == pipeline.analyze(va, wearable, rng=4)

    def test_skip_segmentation_falls_back_to_full_recording(self):
        va, wearable = make_pair(8)
        pipeline = DefensePipeline.warm(seed=31, **RECIPE)
        degraded = pipeline.analyze(
            va, wearable, rng=5, skip_segmentation=True
        )
        baseline = DefensePipeline(
            segmenter=None, config=pipeline.config
        ).analyze(va, wearable, rng=5)
        assert degraded == baseline
        assert degraded.n_segments == 0


class TestPipelineSpecHardening:
    """The randomized-defense knobs ride the serving spec."""

    def test_hardening_defaults_off(self):
        from repro.serve.workers import PipelineSpec

        spec = PipelineSpec(use_segmenter=False)
        assert spec.hardening is None
        pipeline = spec.build_pipeline(16_000.0, False)
        assert pipeline.config.hardening is None

    def test_hardening_knobs_reach_the_pipeline(self):
        from repro.serve.workers import PipelineSpec

        spec = PipelineSpec(
            use_segmenter=False,
            threshold=0.3,
            threshold_jitter=0.05,
            subset_fraction=0.5,
        )
        pipeline = spec.build_pipeline(16_000.0, False)
        hardening = pipeline.config.hardening
        assert hardening is not None
        assert hardening.threshold_jitter == 0.05
        assert hardening.subset_fraction == 0.5

    def test_jitter_without_threshold_fails_at_spec_construction(self):
        from repro.errors import ConfigurationError
        from repro.serve.workers import PipelineSpec

        with pytest.raises(ConfigurationError):
            PipelineSpec(use_segmenter=False, threshold_jitter=0.05)

    def test_hardening_knobs_split_the_fingerprint(self):
        from repro.serve.workers import PipelineSpec

        plain = PipelineSpec(threshold=0.3)
        jittered = PipelineSpec(threshold=0.3, threshold_jitter=0.05)
        subset = PipelineSpec(threshold=0.3, subset_fraction=0.5)
        rd_plain = PipelineSpec(segmenter_backend="rd", threshold=0.3)
        rd_subset = PipelineSpec(
            segmenter_backend="rd", threshold=0.3, subset_fraction=0.5
        )
        assert len({
            plain.fingerprint,
            jittered.fingerprint,
            subset.fingerprint,
        }) == 3
        assert rd_plain.fingerprint != rd_subset.fingerprint
