"""Load generator: accounting invariants, modes, reproducibility."""

import pytest

from repro.errors import ConfigurationError
from repro.serve import (
    LoadgenConfig,
    PipelineSpec,
    ServiceConfig,
    VerificationService,
    build_recording_pool,
    run_loadgen,
)


@pytest.fixture(scope="module")
def recording_pool():
    return build_recording_pool(seed=17, pool_size=4)


@pytest.fixture(scope="module")
def fast_spec():
    return PipelineSpec(use_segmenter=False)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_requests": 0},
            {"mode": "sinusoidal"},
            {"concurrency": 0},
            {"rate_rps": 0.0},
            {"pool_size": 0},
            {"attack_fraction": 1.5},
            {"deadline_s": -1.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            LoadgenConfig(**kwargs)


class TestClosedLoop:
    def test_fifty_requests_four_workers_zero_errors(
        self, fast_spec, recording_pool
    ):
        """The acceptance-criteria run: >= 50 requests at 4 workers."""
        config = ServiceConfig(n_workers=4, max_wait_s=0.005)
        with VerificationService(fast_spec, config) as service:
            report = run_loadgen(
                service,
                LoadgenConfig(n_requests=50, concurrency=8, seed=1),
                pool=recording_pool,
            )
            metrics = service.metrics()
        assert report.n_issued == 50
        assert report.n_served == 50
        assert report.n_failed == 0
        assert report.n_rejected == 0
        assert report.n_shed == 0
        # Client- and server-side accounting agree: nothing dropped yet
        # reported served.
        assert metrics.n_served == report.n_served
        assert metrics.n_resolved == metrics.n_submitted == 50
        assert report.throughput_rps > 0
        p50 = report.latency_percentile(50)
        p95 = report.latency_percentile(95)
        p99 = report.latency_percentile(99)
        assert 0 < p50 <= p95 <= p99

    def test_terminal_status_partition_under_shedding(
        self, fast_spec, recording_pool
    ):
        config = ServiceConfig(
            n_workers=1,
            queue_capacity=2,
            backpressure="shed-oldest",
            max_wait_s=0.1,
            max_batch_size=16,
        )
        with VerificationService(fast_spec, config) as service:
            report = run_loadgen(
                service,
                LoadgenConfig(n_requests=24, concurrency=8, seed=2),
                pool=recording_pool,
            )
        assert report.n_issued == 24
        assert (
            report.n_served
            + report.n_rejected
            + report.n_shed
            + report.n_failed
            == 24
        )
        assert report.n_failed == 0


class TestOpenLoop:
    def test_open_loop_issues_at_rate(self, fast_spec, recording_pool):
        config = ServiceConfig(n_workers=2, max_wait_s=0.005)
        with VerificationService(fast_spec, config) as service:
            report = run_loadgen(
                service,
                LoadgenConfig(
                    n_requests=10, mode="open", rate_rps=50.0, seed=3
                ),
                pool=recording_pool,
            )
        assert report.mode == "open"
        assert report.n_issued == 10
        assert report.n_served + report.n_rejected + report.n_shed == 10
        # Arrivals were spaced: the run takes at least (n-1)/rate.
        assert report.wall_s >= 9 / 50.0


class TestReproducibility:
    def test_same_seed_same_verdict_distribution(
        self, fast_spec, recording_pool
    ):
        """Request seeds derive from the config seed, so two runs score
        identically regardless of thread scheduling."""

        def scores():
            config = ServiceConfig(n_workers=2, max_wait_s=0.005)
            with VerificationService(fast_spec, config) as service:
                futures = []
                from repro.serve.loadgen import _make_request

                loadgen_config = LoadgenConfig(n_requests=8, seed=5)
                for index in range(8):
                    futures.append(
                        service.submit(
                            _make_request(
                                loadgen_config, recording_pool, index
                            )
                        )
                    )
                return [
                    future.result().verdict.score for future in futures
                ]

        assert scores() == scores()


class TestRecordingPool:
    def test_pool_mixes_legit_and_attack(self, recording_pool):
        kinds = [is_attack for _, _, is_attack in recording_pool.pairs]
        assert any(kinds) and not all(kinds)

    def test_pool_deterministic(self):
        import numpy as np

        first = build_recording_pool(seed=7, pool_size=2)
        second = build_recording_pool(seed=7, pool_size=2)
        for (va_a, we_a, kind_a), (va_b, we_b, kind_b) in zip(
            first.pairs, second.pairs
        ):
            assert kind_a == kind_b
            np.testing.assert_array_equal(va_a, va_b)
            np.testing.assert_array_equal(we_a, we_b)
