"""Verification service: determinism, deadlines, backpressure, metrics."""

import numpy as np
import pytest

from repro.core.pipeline import PIPELINE_STAGES, DefensePipeline
from repro.errors import ConfigurationError, ServiceOverloadError
from repro.serve import (
    PipelineSpec,
    RequestStatus,
    ServiceConfig,
    VerificationRequest,
    VerificationService,
)

AUDIO_RATE = 16_000.0


def make_pair(seed, n_samples=8_000):
    """A small synthetic recording pair (noise is enough to verify)."""
    rng = np.random.default_rng(seed)
    va = rng.normal(0.0, 0.1, n_samples)
    wearable = 0.8 * va + rng.normal(0.0, 0.02, n_samples)
    return va, wearable


def make_request(seed, **kwargs):
    va, wearable = make_pair(seed)
    kwargs.setdefault("request_id", f"req-{seed}")
    return VerificationRequest(
        va_audio=va, wearable_audio=wearable, seed=seed, **kwargs
    )


@pytest.fixture(scope="module")
def fast_spec():
    """Segmenter-free spec: requests run the no-selection pipeline."""
    return PipelineSpec(use_segmenter=False)


class TestLifecycle:
    def test_submit_before_start_raises(self, fast_spec):
        service = VerificationService(fast_spec)
        with pytest.raises(ConfigurationError):
            service.submit(make_request(0))

    def test_context_manager_serves_and_stops(self, fast_spec):
        with VerificationService(
            fast_spec, ServiceConfig(n_workers=2)
        ) as service:
            response = service.verify(make_request(1))
        assert response.status is RequestStatus.SERVED
        assert response.verdict is not None
        # A second start/stop cycle is a no-op-safe sequence.
        service.stop()

    def test_stop_drains_pending_requests(self, fast_spec):
        service = VerificationService(
            fast_spec,
            ServiceConfig(n_workers=1, max_wait_s=5.0, max_batch_size=64),
        )
        service.start()
        futures = [service.submit(make_request(seed)) for seed in range(6)]
        # Stop before the 5 s batch deadline: the drain path must still
        # answer every admitted request.
        service.stop()
        statuses = {future.result().status for future in futures}
        assert statuses == {RequestStatus.SERVED}

    def test_stop_is_idempotent(self, fast_spec):
        service = VerificationService(fast_spec)
        service.stop()  # never started: no-op
        service.start()
        service.verify(make_request(1))
        service.stop()
        service.stop()  # repeat: no-op
        with pytest.raises(ConfigurationError):
            service.submit(make_request(2))

    def test_stop_is_concurrent_safe(self, fast_spec):
        import threading

        service = VerificationService(
            fast_spec, ServiceConfig(n_workers=1, max_wait_s=0.5)
        )
        service.start()
        futures = [service.submit(make_request(seed)) for seed in range(4)]
        errors = []

        def stopper():
            try:
                service.stop()
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=stopper) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Every caller returned only after the drain: all admitted
        # requests already resolved.
        assert all(future.done() for future in futures)
        statuses = {future.result().status for future in futures}
        assert statuses == {RequestStatus.SERVED}


class TestResizeWorkers:
    def test_resize_swaps_pool_without_dropping(self, fast_spec):
        with VerificationService(
            fast_spec, ServiceConfig(n_workers=1, max_wait_s=0.005)
        ) as service:
            before = service.verify(make_request(1))
            service.resize_workers(3)
            assert service.n_workers == 3
            after = service.verify(make_request(1))
            service.resize_workers(1)
            assert service.n_workers == 1
        # Same seed through both pools: bitwise-identical verdict.
        assert before.verdict.score == after.verdict.score

    def test_resize_to_current_size_is_noop(self, fast_spec):
        with VerificationService(
            fast_spec, ServiceConfig(n_workers=2)
        ) as service:
            pool = service._pool
            service.resize_workers(2)
            assert service._pool is pool

    def test_resize_validates(self, fast_spec):
        service = VerificationService(fast_spec)
        with pytest.raises(ConfigurationError):
            service.resize_workers(0)
        with pytest.raises(ConfigurationError):
            service.resize_workers(2)  # not started


class TestDeterminismContract:
    def test_service_matches_direct_pipeline_bitwise(self, fast_spec):
        pipeline = fast_spec.build_pipeline(AUDIO_RATE, False)
        seeds = [11, 22, 33, 44, 55, 66, 77, 88]
        with VerificationService(
            fast_spec, ServiceConfig(n_workers=4, max_wait_s=0.005)
        ) as service:
            futures = [
                service.submit(make_request(seed)) for seed in seeds
            ]
            responses = [future.result() for future in futures]
        for seed, response in zip(seeds, responses):
            va, wearable = make_pair(seed)
            direct = pipeline.verify(va, wearable, rng=seed)
            assert response.status is RequestStatus.SERVED
            assert response.verdict == direct

    def test_batch_composition_does_not_change_verdicts(self, fast_spec):
        seeds = [5, 6, 7, 8]

        def serve_all(max_batch):
            config = ServiceConfig(
                n_workers=2,
                max_batch_size=max_batch,
                max_wait_s=0.005,
            )
            with VerificationService(fast_spec, config) as service:
                futures = [
                    service.submit(make_request(seed)) for seed in seeds
                ]
                return [future.result().verdict for future in futures]

        assert serve_all(max_batch=1) == serve_all(max_batch=4)


class TestDeadlines:
    def test_expired_deadline_degrades_not_drops(self, fast_spec):
        # A deadline far smaller than the queue wait forces every
        # request onto the full-recording fallback path.
        config = ServiceConfig(
            n_workers=1, max_wait_s=0.2, max_batch_size=64
        )
        with VerificationService(fast_spec, config) as service:
            futures = [
                service.submit(
                    make_request(seed, deadline_s=1e-6)
                )
                for seed in range(4)
            ]
            responses = [future.result() for future in futures]
        assert all(r.status is RequestStatus.SERVED for r in responses)
        assert all(r.degraded for r in responses)

    def test_degraded_verdict_matches_skip_segmentation(self):
        spec = PipelineSpec(
            segmenter_seed=3, n_speakers=2, n_per_phoneme=2, epochs=2
        )
        pipeline = spec.build_pipeline(AUDIO_RATE, False)
        va, wearable = make_pair(99)
        with VerificationService(
            spec, ServiceConfig(n_workers=1)
        ) as service:
            response = service.verify(
                make_request(99, deadline_s=1e-6)
            )
        assert response.degraded
        direct = pipeline.verify(
            va, wearable, rng=99, skip_segmentation=True
        )
        assert response.verdict == direct

    def test_default_deadline_applied_from_config(self, fast_spec):
        config = ServiceConfig(n_workers=1, default_deadline_s=120.0)
        with VerificationService(fast_spec, config) as service:
            request = make_request(7)
            assert request.deadline_s is None
            service.verify(request)
            assert request.deadline_s == 120.0


class TestBackpressure:
    def test_reject_policy_raises_and_counts(self, fast_spec):
        config = ServiceConfig(
            n_workers=1,
            queue_capacity=1,
            backpressure="reject",
            max_wait_s=0.5,
            max_batch_size=64,
        )
        with VerificationService(fast_spec, config) as service:
            futures = []
            rejected = 0
            for seed in range(30):
                try:
                    futures.append(service.submit(make_request(seed)))
                except ServiceOverloadError:
                    rejected += 1
            responses = [future.result() for future in futures]
        assert all(
            response.status is RequestStatus.SERVED
            for response in responses
        )
        metrics = service.metrics()
        assert metrics.n_rejected == rejected
        assert metrics.n_served == len(responses)
        assert metrics.n_submitted == 30

    def test_shed_policy_resolves_shed_futures(self, fast_spec):
        config = ServiceConfig(
            n_workers=1,
            queue_capacity=1,
            backpressure="shed-oldest",
            max_wait_s=0.5,
            max_batch_size=64,
        )
        with VerificationService(fast_spec, config) as service:
            futures = [
                service.submit(make_request(seed)) for seed in range(20)
            ]
            responses = [future.result() for future in futures]
        by_status = {}
        for response in responses:
            by_status.setdefault(response.status, []).append(response)
        metrics = service.metrics()
        assert metrics.n_shed == len(
            by_status.get(RequestStatus.SHED, [])
        )
        # Every submitted request reached exactly one terminal state.
        assert metrics.n_resolved == metrics.n_submitted == 20
        for shed in by_status.get(RequestStatus.SHED, []):
            assert shed.verdict is None
            assert "shed" in shed.error


class TestMetrics:
    def test_snapshot_well_formed(self, fast_spec):
        with VerificationService(
            fast_spec, ServiceConfig(n_workers=2)
        ) as service:
            for seed in range(5):
                service.verify(make_request(seed))
            metrics = service.metrics()
        assert metrics.n_submitted == metrics.n_served == 5
        assert metrics.n_failed == 0
        assert metrics.throughput_rps > 0
        assert metrics.total_latency.count == 5
        assert metrics.total_latency.p50_s <= metrics.total_latency.p99_s
        for stage in PIPELINE_STAGES:
            assert metrics.stage_latency[stage].count == 5

    def test_failed_requests_counted_not_raised(self, fast_spec):
        with VerificationService(
            fast_spec, ServiceConfig(n_workers=1)
        ) as service:
            bad = VerificationRequest(
                va_audio=np.zeros(0),
                wearable_audio=np.zeros(0),
                seed=1,
                request_id="empty",
            )
            response = service.verify(bad)
        assert response.status is RequestStatus.FAILED
        assert "SignalError" in response.error
        assert service.metrics().n_failed == 1


class TestWorkerModes:
    @pytest.mark.slow
    def test_process_mode_matches_thread_mode(self, fast_spec):
        seeds = [3, 4, 5]

        def run(mode):
            config = ServiceConfig(n_workers=2, worker_mode=mode)
            with VerificationService(fast_spec, config) as service:
                return [
                    service.verify(make_request(seed)).verdict
                    for seed in seeds
                ]

        assert run("thread") == run("process")


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_workers": 0},
            {"queue_capacity": 0},
            {"max_wait_s": -0.01},
            {"max_batch_size": 0},
            {"default_deadline_s": 0.0},
            {"default_deadline_s": -1.0},
            {"block_timeout_s": -0.5},
            {"backpressure": "drop-newest"},
            {"worker_mode": "fork"},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServiceConfig(**kwargs)
