"""Speaker-to-accelerometer conduction path."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sensing.conduction import ConductionPath

RATE = 16_000.0


@pytest.fixture()
def path():
    return ConductionPath(response_jitter_db=0.0)


def test_low_frequencies_suppressed(path):
    freqs = np.array([100.0, 2200.0])
    response = path.response(freqs)
    assert response[0] < 0.1 * response[1]


def test_resonance_peak(path):
    freqs = np.array([1200.0, 2200.0, 4000.0])
    response = path.response(freqs)
    assert response[1] == max(response)


def test_high_frequency_rolloff(path):
    freqs = np.array([2200.0, 7500.0])
    response = path.response(freqs)
    assert response[1] < response[0]


def test_apply_filters_low_tone(path):
    from repro.dsp.generators import tone

    low = tone(150.0, 0.5, RATE)
    high = tone(2200.0, 0.5, RATE)
    low_out = path.apply(low, RATE)
    high_out = path.apply(high, RATE)
    assert np.sqrt(np.mean(low_out**2)) < 0.1 * np.sqrt(
        np.mean(high_out**2)
    )


def test_apply_deterministic_without_jitter(path):
    from repro.dsp.generators import tone

    signal = tone(1000.0, 0.2, RATE)
    np.testing.assert_array_equal(
        path.apply(signal, RATE), path.apply(signal, RATE)
    )


def test_jitter_varies_per_call():
    from repro.dsp.generators import tone

    path = ConductionPath(response_jitter_db=2.0)
    signal = tone(1000.0, 0.2, RATE)
    a = path.apply(signal, RATE, rng=1)
    b = path.apply(signal, RATE, rng=2)
    assert not np.allclose(a, b)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"low_corner_hz": 0.0},
        {"low_corner_hz": 3000.0},   # above resonance
        {"high_corner_hz": 1000.0},  # below resonance
        {"gain": 0.0},
        {"response_jitter_db": -1.0},
    ],
)
def test_invalid_configs(kwargs):
    with pytest.raises(ConfigurationError):
        ConductionPath(**kwargs)
