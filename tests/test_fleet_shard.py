"""Service shards: sim engine semantics, health, autoscale hook."""

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    ServiceOverloadError,
    ShardUnavailableError,
)
from repro.fleet.shard import (
    ServiceEngine,
    ServiceShard,
    SimulatedEngineConfig,
    SimulatedShardEngine,
)
from repro.fleet.slo import Autoscaler, AutoscalerConfig, SloConfig
from repro.serve import (
    BackpressurePolicy,
    PipelineSpec,
    ServiceConfig,
    VerificationRequest,
    VerificationService,
)
from repro.serve.request import RequestStatus

AUDIO = np.zeros(160)


def make_request(seed, **kwargs):
    kwargs.setdefault("request_id", f"req-{seed}")
    return VerificationRequest(
        va_audio=AUDIO, wearable_audio=AUDIO, seed=seed, **kwargs
    )


def sim_engine(**kwargs):
    kwargs.setdefault("service_time_s", 0.001)
    return SimulatedShardEngine(SimulatedEngineConfig(**kwargs))


class TestSimulatedEngine:
    def test_serves_with_synthetic_verdict(self):
        engine = sim_engine()
        engine.start()
        try:
            response = engine.submit(make_request(1)).result()
        finally:
            engine.stop()
        assert response.status is RequestStatus.SERVED
        assert -1.0 <= response.verdict.score <= 1.0

    def test_verdict_deterministic_in_seed(self):
        scores = []
        for _ in range(2):
            engine = sim_engine()
            engine.start()
            scores.append(
                engine.submit(make_request(42)).result().verdict.score
            )
            engine.stop()
        assert scores[0] == scores[1]

    def test_submit_before_start_raises(self):
        with pytest.raises(ConfigurationError):
            sim_engine().submit(make_request(0))

    def test_stop_drains_queued_requests(self):
        engine = sim_engine(n_workers=1, service_time_s=0.01,
                            queue_capacity=32)
        engine.start()
        futures = [engine.submit(make_request(i)) for i in range(10)]
        engine.stop()
        statuses = {f.result(timeout=5).status for f in futures}
        assert statuses == {RequestStatus.SERVED}
        assert engine.metrics().n_served == 10

    def test_reject_policy_at_capacity(self):
        engine = sim_engine(
            n_workers=1, service_time_s=0.05, queue_capacity=1
        )
        engine.start()
        try:
            engine.submit(make_request(0))
            with pytest.raises(ServiceOverloadError):
                for i in range(1, 8):
                    engine.submit(make_request(i))
        finally:
            engine.stop()
        assert engine.metrics().n_rejected >= 1

    def test_shed_oldest_resolves_shed_future(self):
        engine = sim_engine(
            n_workers=1,
            service_time_s=0.05,
            queue_capacity=1,
            backpressure=BackpressurePolicy.SHED_OLDEST,
        )
        engine.start()
        futures = [engine.submit(make_request(i)) for i in range(6)]
        engine.stop()
        statuses = [f.result(timeout=5).status for f in futures]
        assert statuses.count(RequestStatus.SHED) >= 1
        assert statuses.count(RequestStatus.SERVED) >= 1
        assert len(statuses) == 6

    def test_expired_deadline_marks_degraded(self):
        engine = sim_engine(n_workers=1, service_time_s=0.03,
                            queue_capacity=8)
        engine.start()
        try:
            blocker = engine.submit(make_request(0))
            late = engine.submit(
                make_request(1, deadline_s=0.001)
            )
            blocker.result(timeout=5)
            assert late.result(timeout=5).degraded
        finally:
            engine.stop()

    def test_scale_up_increases_throughput_capacity(self):
        engine = sim_engine(n_workers=1, service_time_s=0.02,
                            queue_capacity=64)
        engine.start()
        try:
            engine.scale_to(4)
            assert engine.n_workers == 4
            start = time.monotonic()
            futures = [
                engine.submit(make_request(i)) for i in range(12)
            ]
            for future in futures:
                future.result(timeout=5)
            elapsed = time.monotonic() - start
            # 12 requests x 20 ms / 4 workers ~ 60 ms; serial would
            # be ~240 ms.  Allow generous scheduling slack.
            assert elapsed < 0.18
        finally:
            engine.stop()

    def test_scale_down_is_cooperative(self):
        engine = sim_engine(n_workers=4, queue_capacity=64)
        engine.start()
        try:
            engine.scale_to(1)
            assert engine.n_workers == 1
            futures = [
                engine.submit(make_request(i)) for i in range(8)
            ]
            for future in futures:
                assert future.result(timeout=5).status is (
                    RequestStatus.SERVED
                )
        finally:
            engine.stop()

    def test_invalid_configs(self):
        for kwargs in (
            {"n_workers": 0},
            {"service_time_s": 0.0},
            {"jitter": 1.0},
            {"queue_capacity": 0},
            {"backpressure": BackpressurePolicy.BLOCK},
        ):
            with pytest.raises(ConfigurationError):
                SimulatedEngineConfig(**kwargs)
        engine = sim_engine()
        engine.start()
        try:
            with pytest.raises(ConfigurationError):
                engine.scale_to(0)
        finally:
            engine.stop()


class TestServiceEngine:
    def test_block_policy_refused(self):
        service = VerificationService(
            PipelineSpec(use_segmenter=False),
            ServiceConfig(backpressure="block"),
        )
        with pytest.raises(ConfigurationError):
            ServiceEngine(service)

    def test_wraps_service_lifecycle_and_scaling(self):
        engine = ServiceEngine(
            VerificationService(
                PipelineSpec(use_segmenter=False),
                ServiceConfig(n_workers=1, backpressure="reject"),
            )
        )
        rng = np.random.default_rng(3)
        va = rng.normal(0.0, 0.1, 8_000)
        wearable = 0.8 * va + rng.normal(0.0, 0.02, 8_000)
        request = VerificationRequest(
            va_audio=va, wearable_audio=wearable, seed=3,
            request_id="req-3",
        )
        engine.start()
        try:
            response = engine.submit(request).result(timeout=30)
            assert response.status is RequestStatus.SERVED
            engine.scale_to(2)
            assert engine.n_workers == 2
        finally:
            engine.stop()
        assert engine.metrics().n_served == 1


class TestServiceShard:
    def _shard(self, **engine_kwargs):
        return ServiceShard(
            "shard-0",
            sim_engine(**engine_kwargs),
            slo=SloConfig(),
        )

    def test_records_served_latency_in_window(self):
        shard = self._shard()
        shard.start()
        try:
            shard.submit(make_request(0)).result(timeout=5)
            deadline = time.monotonic() + 2.0
            while len(shard.window) < 1:
                if time.monotonic() > deadline:  # pragma: no cover
                    pytest.fail("latency never recorded")
                time.sleep(0.005)
        finally:
            shard.stop()

    def test_unavailable_after_fail(self):
        shard = self._shard()
        shard.start()
        shard.fail()
        assert not shard.available
        with pytest.raises(ShardUnavailableError):
            shard.submit(make_request(0))

    def test_submit_before_start_is_unavailable(self):
        with pytest.raises(ShardUnavailableError):
            self._shard().submit(make_request(0))

    def test_engine_error_marks_shard_failed(self):
        class ExplodingEngine(SimulatedShardEngine):
            def submit(self, request):
                raise RuntimeError("disk on fire")

        shard = ServiceShard(
            "shard-0",
            ExplodingEngine(
                SimulatedEngineConfig(service_time_s=0.001)
            ),
        )
        shard.start()
        with pytest.raises(ShardUnavailableError):
            shard.submit(make_request(0))
        assert not shard.available
        shard.stop()

    def test_overload_propagates_not_unavailable(self):
        shard = self._shard(
            n_workers=1, service_time_s=0.05, queue_capacity=1
        )
        shard.start()
        try:
            with pytest.raises(ServiceOverloadError):
                for i in range(8):
                    shard.submit(make_request(i))
            assert shard.available
        finally:
            shard.stop()

    def test_autoscale_tick_applies_and_records(self):
        slo = SloConfig(target_p95_s=0.001, min_samples=1)
        shard = ServiceShard(
            "shard-0",
            sim_engine(n_workers=1, service_time_s=0.01,
                       queue_capacity=64),
            slo=slo,
            autoscaler=Autoscaler(
                AutoscalerConfig(cooldown_s=0.0), slo
            ),
        )
        shard.start()
        try:
            shard.submit(make_request(0)).result(timeout=5)
            deadline = time.monotonic() + 2.0
            while len(shard.window) < 1:
                if time.monotonic() > deadline:  # pragma: no cover
                    pytest.fail("latency never recorded")
                time.sleep(0.005)
            event = shard.autoscale_tick(now=100.0)
            assert event is not None
            assert event.to_workers == 2
            assert shard.engine.n_workers == 2
            assert shard.scale_events == [event]
        finally:
            shard.stop()

    def test_autoscale_tick_without_autoscaler_is_noop(self):
        shard = self._shard()
        shard.start()
        try:
            assert shard.autoscale_tick(now=0.0) is None
        finally:
            shard.stop()

    def test_empty_shard_id_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceShard("", sim_engine())

    def test_custom_profile_cache_is_kept_even_when_empty(self, tmp_path):
        """Regression: an empty ProfileCache is falsy (len 0); the
        shard must not swap a store-backed cache for the default."""
        from repro.fleet.profiles import (
            ProfileCache,
            registry_profile_loader,
        )
        from repro.fleet.shard import service_shard_factory
        from repro.store import ArtifactStore, ModelRegistry

        loader = registry_profile_loader(
            ModelRegistry(tmp_path / "store")
        )
        cache = ProfileCache(capacity=8, loader=loader)
        shard = ServiceShard("shard-0", sim_engine(), profiles=cache)
        assert shard.profiles is cache

        factory = service_shard_factory(
            PipelineSpec(use_segmenter=False),
            ServiceConfig(backpressure="reject"),
            profile_loader=loader,
        )
        built = factory("shard-1")
        built.profiles.get("user-7")
        keys = [
            info.key
            for info in ArtifactStore(tmp_path / "store").entries()
        ]
        assert len(keys) == 1 and keys[0].kind == "user-profile"
