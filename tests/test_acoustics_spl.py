"""SPL calibration conventions."""

import numpy as np
import pytest

from repro.acoustics.spl import (
    REFERENCE_RMS_AT_65_DB,
    db_to_gain,
    gain_to_db,
    rms,
    scale_to_spl,
    spl_of,
)
from repro.dsp.generators import tone, white_noise
from repro.errors import ConfigurationError, SignalError


def test_db_gain_roundtrip():
    for db in (-20.0, 0.0, 12.5):
        assert gain_to_db(db_to_gain(db)) == pytest.approx(db)


def test_gain_to_db_rejects_nonpositive():
    with pytest.raises(ConfigurationError):
        gain_to_db(0.0)


def test_rms_of_unit_sine():
    signal = tone(100.0, 1.0, 8000.0, amplitude=1.0)
    assert rms(signal) == pytest.approx(1 / np.sqrt(2), rel=0.01)


def test_reference_convention():
    signal = white_noise(1.0, 8000.0, amplitude=REFERENCE_RMS_AT_65_DB,
                         rng=0)
    assert spl_of(signal) == pytest.approx(65.0, abs=0.5)


def test_scale_to_spl_hits_target():
    signal = tone(100.0, 1.0, 8000.0)
    for target in (55.0, 65.0, 85.0):
        scaled = scale_to_spl(signal, target)
        assert spl_of(scaled) == pytest.approx(target, abs=1e-6)


def test_scale_preserves_shape():
    signal = tone(100.0, 0.5, 8000.0)
    scaled = scale_to_spl(signal, 75.0)
    correlation = np.corrcoef(signal, scaled)[0, 1]
    assert correlation == pytest.approx(1.0)


def test_plus_6db_doubles_amplitude():
    signal = tone(100.0, 0.5, 8000.0)
    quiet = scale_to_spl(signal, 65.0)
    loud = scale_to_spl(signal, 71.0)
    assert rms(loud) / rms(quiet) == pytest.approx(
        db_to_gain(6.0), rel=1e-6
    )


def test_silent_signal_rejected():
    with pytest.raises(SignalError):
        scale_to_spl(np.zeros(100), 65.0)
    with pytest.raises(SignalError):
        spl_of(np.zeros(100))
