"""Campaign runner: determinism contract, sharding, stats, fallback."""

import numpy as np
import pytest

from repro.attacks.base import AttackKind
from repro.errors import ConfigurationError
from repro.eval.campaign import (
    CampaignConfig,
    DetectorBank,
    FULL_SYSTEM,
    ScoreSet,
    build_campaign_units,
    collect_scores,
    score_campaign_unit,
)
from repro.eval.participants import ParticipantPool
from repro.eval.reporting import format_runner_stats
from repro.eval.rooms import ROOM_A
from repro.eval.runner import CampaignRunner
from repro.phonemes.corpus import SyntheticCorpus


@pytest.fixture(scope="module")
def campaign():
    """A small campaign with four units (one room, four victims)."""
    pool = ParticipantPool(n_participants=8, seed=11)
    detectors = DetectorBank(segmenter=None)
    config = CampaignConfig(
        n_commands_per_participant=1, n_attacks_per_kind=1, seed=12
    )
    corpus = SyntheticCorpus(speakers=pool.speakers, seed=config.seed)
    return pool, detectors, config, corpus


@pytest.fixture(scope="module")
def serial_result(campaign):
    pool, detectors, config, corpus = campaign
    return CampaignRunner(n_workers=1).run(
        [ROOM_A], pool, detectors, [AttackKind.REPLAY], config,
        corpus=corpus,
    )


class TestDeterminismContract:
    def test_four_workers_match_serial_bitwise(
        self, campaign, serial_result
    ):
        pool, detectors, config, corpus = campaign
        parallel = CampaignRunner(n_workers=4).run(
            [ROOM_A], pool, detectors, [AttackKind.REPLAY], config,
            corpus=corpus,
        )
        assert parallel.stats.mode == "process-pool"
        assert parallel.stats.n_workers == 4
        # Same detectors, same score lists in the same order — bitwise.
        assert parallel.scores.legit == serial_result.scores.legit
        assert parallel.scores.attacks == serial_result.scores.attacks

    def test_collect_scores_n_workers_param(self, campaign, serial_result):
        pool, detectors, config, corpus = campaign
        scores = collect_scores(
            [ROOM_A], pool, detectors, [AttackKind.REPLAY], config,
            corpus=corpus, n_workers=2,
        )
        assert scores.legit == serial_result.scores.legit
        assert scores.attacks == serial_result.scores.attacks


class TestMergePartitionProperty:
    @pytest.mark.parametrize("split", [1, 2, 3])
    def test_merge_of_disjoint_partitions_equals_one_shot(
        self, campaign, serial_result, split
    ):
        pool, detectors, config, corpus = campaign
        units = build_campaign_units(
            [ROOM_A], pool, [AttackKind.REPLAY], config
        )
        assert len(units) == 4
        merged = ScoreSet()
        for partition in (units[:split], units[split:]):
            for unit in partition:
                merged.merge(
                    score_campaign_unit(unit, detectors, corpus)
                )
        assert merged.legit == serial_result.scores.legit
        assert merged.attacks == serial_result.scores.attacks


class TestStateLeakRegression:
    def test_attack_scores_independent_of_legit_sample_count(self):
        """Attack scores must not shift with the legitimate workload.

        Before the fix, ``_score_legitimate`` mutated the shared
        scenario and shared one RNG stream with the attack pass, so
        adding legitimate samples silently perturbed attack scores.
        """
        pool = ParticipantPool(n_participants=4, seed=21)
        detectors = DetectorBank(segmenter=None, include_baselines=False)
        attack_sets = []
        for n_commands in (1, 3):
            config = CampaignConfig(
                n_commands_per_participant=n_commands,
                n_attacks_per_kind=1,
                seed=22,
            )
            scores = collect_scores(
                [ROOM_A], pool, detectors, [AttackKind.REPLAY], config
            )
            attack_sets.append(scores.attacks[AttackKind.REPLAY])
        assert attack_sets[0] == attack_sets[1]


class TestRunnerStats:
    def test_stats_account_every_unit_and_sample(self, serial_result):
        stats = serial_result.stats
        assert stats.mode == "serial"
        assert stats.n_units == 4
        # 1 command + 1 attack × 1 kind per unit.
        assert stats.n_samples == 8
        assert stats.wall_s > 0
        assert stats.samples_per_s > 0
        assert all(unit.wall_s > 0 for unit in stats.units)
        labels = [unit.label for unit in stats.units]
        assert all(label.startswith("Room A/") for label in labels)
        assert len(set(labels)) == len(labels)

    def test_format_runner_stats(self, serial_result):
        text = format_runner_stats(serial_result.stats)
        assert "samples/s" in text
        assert "4 units" in text
        assert "Room A/" in text


class TestWorkerResolution:
    def test_invalid_worker_count(self):
        with pytest.raises(ConfigurationError):
            CampaignRunner(n_workers=0)

    def test_workers_capped_at_unit_count(self, campaign):
        pool, detectors, config, corpus = campaign
        units = build_campaign_units(
            [ROOM_A], pool, [AttackKind.REPLAY], config
        )
        runner = CampaignRunner(n_workers=64)
        assert runner._resolve_workers(len(units)) == len(units)
        assert CampaignRunner(n_workers=1)._resolve_workers(4) == 1

    def test_default_is_cpu_count_aware(self):
        import os

        runner = CampaignRunner()
        assert runner._resolve_workers(1024) == (os.cpu_count() or 1)


class TestGracefulFallback:
    def test_pool_spawn_failure_falls_back_to_serial(
        self, campaign, serial_result, monkeypatch
    ):
        import repro.runtime.executor as executor_module

        def broken_executor(*args, **kwargs):
            raise OSError("no processes available")

        monkeypatch.setattr(
            executor_module, "ProcessPoolExecutor", broken_executor
        )
        pool, detectors, config, corpus = campaign
        result = CampaignRunner(n_workers=4).run(
            [ROOM_A], pool, detectors, [AttackKind.REPLAY], config,
            corpus=corpus,
        )
        assert result.stats.mode == "process-pool+serial-fallback"
        assert result.scores.legit == serial_result.scores.legit
        assert result.scores.attacks == serial_result.scores.attacks


class TestSweepFanOut:
    def test_parallel_sweep_matches_serial(self):
        from repro.eval.experiment import run_factor_sweep

        pool = ParticipantPool(n_participants=2, seed=31)
        detectors = DetectorBank(segmenter=None, include_baselines=False)
        config = CampaignConfig(
            n_commands_per_participant=1, n_attacks_per_kind=1, seed=32
        )
        kwargs = dict(
            factor="attack_spl",
            values=[70.0, 80.0],
            attack_kinds=[AttackKind.REPLAY],
            base_config=config,
            rooms=[ROOM_A],
            pool=pool,
            detectors=detectors,
        )
        serial = run_factor_sweep(**kwargs)
        parallel = run_factor_sweep(n_workers=2, **kwargs)
        assert serial.keys() == parallel.keys()
        for label in serial:
            serial_metrics = serial[label][AttackKind.REPLAY][FULL_SYSTEM]
            par_metrics = parallel[label][AttackKind.REPLAY][FULL_SYSTEM]
            assert serial_metrics == par_metrics
