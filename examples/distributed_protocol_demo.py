"""Cross-device protocol walkthrough on the discrete-event substrate.

Shows the distributed side of the defense: the VA detects the wake word,
notifies the wearable through the (latency-modelled) cloud relay, both
devices record, the VA ships its recording to the wearable, and the
defense's cross-correlation sync removes the genuine network-induced
offset — printing each protocol step with virtual timestamps.

Run:  python examples/distributed_protocol_demo.py
"""

import numpy as np

from repro.acoustics.propagation import propagate
from repro.acoustics.spl import scale_to_spl
from repro.core.sync import synchronize_recordings
from repro.phonemes import SyntheticCorpus, phonemize
from repro.sim import NetworkConfig, run_synchronized_recording


def main() -> None:
    # The acoustic scene: one command heard by both devices.
    corpus = SyntheticCorpus(n_speakers=2, seed=31)
    utterance = corpus.utterance(
        phonemize("ok google lock the front door"), rng=32
    )
    source = scale_to_spl(utterance.waveform, 70.0)
    padded = np.concatenate([source, np.zeros(8000)])
    at_va = propagate(padded, 16_000.0, 2.0)
    at_wearable = propagate(padded, 16_000.0, 1.0)

    print("Running the recording session over the simulated LAN...\n")
    session = run_synchronized_recording(
        at_va,
        at_wearable,
        16_000.0,
        network_config=NetworkConfig(mean_delay_s=0.1, jitter_s=0.03),
        rng=33,
    )

    print("VA device trace:")
    for line in session.va_log:
        print(f"  {line}")
    print("\nWearable trace:")
    for line in session.wearable_log:
        print(f"  {line}")

    print(
        f"\nProtocol-induced recording offset: "
        f"{session.trigger_delay_s * 1000:.1f} ms"
    )
    _, _, estimated = synchronize_recordings(
        session.va_recording, session.wearable_recording, 16_000.0
    )
    print(
        f"Offset recovered by cross-correlation sync: "
        f"{estimated * 1000:.1f} ms"
    )
    error_ms = abs(estimated - session.trigger_delay_s) * 1000
    print(f"Residual synchronization error: {error_ms:.2f} ms")


if __name__ == "__main__":
    main()
