"""Thru-barrier attack study (paper § III-A, Table I).

How vulnerable are commercial VA devices to attacks launched behind a
barrier?  This example replays wake words through a glass window at two
sound levels against all four device models and prints the success
counts, demonstrating why a dedicated defense is needed.

Run:  python examples/attack_study.py
"""

import numpy as np

from repro.acoustics.propagation import propagate
from repro.attacks import AttackScenario, ReplayAttack
from repro.eval.rooms import ROOM_A
from repro.phonemes import SyntheticCorpus
from repro.utils.rng import child_rng
from repro.va import VA_DEVICES, VoiceAssistantDevice

N_ATTEMPTS = 10


def main() -> None:
    corpus = SyntheticCorpus(n_speakers=2, seed=77)
    scenario = AttackScenario(room_config=ROOM_A)
    replay = ReplayAttack(corpus, corpus.speakers[0])
    rng = np.random.default_rng(78)

    print(
        "Replay attack through a glass window, VA 2 m inside "
        f"({N_ATTEMPTS} attempts per cell)\n"
    )
    print(f"{'device':14} {'65 dB':>8} {'75 dB':>8}")
    for name, spec in VA_DEVICES.items():
        cells = []
        for level in (65.0, 75.0):
            successes = 0
            for attempt in range(N_ATTEMPTS):
                attack = replay.generate(
                    command=spec.wake_word,
                    rng=child_rng(rng, f"{name}{level}{attempt}"),
                )
                interior = scenario.channel.transmit(
                    attack.waveform, attack.sample_rate, level,
                    rng=child_rng(rng, f"b{name}{level}{attempt}"),
                )
                at_device = propagate(interior, attack.sample_rate, 2.0)
                device = VoiceAssistantDevice(spec)
                result = device.try_trigger(
                    at_device, attack.sample_rate,
                    rng=child_rng(rng, f"t{name}{level}{attempt}"),
                )
                successes += result.triggered
            cells.append(successes)
        print(
            f"{name:14} {cells[0]:>5}/10 {cells[1]:>5}/10"
        )

    print(
        "\nSmart speakers' far-field microphones make them easy "
        "targets;\nthe iPhone's near-field mic resists the quiet "
        "65 dB attack."
    )


if __name__ == "__main__":
    main()
