"""Smart-home protection scenario: all four attacks vs the defense.

The paper's motivating scenario: an adversary behind the apartment's
glass window tries to disarm the smart-lock system using each of the
four threat-model attacks, while the resident keeps using the VA
normally.  The example calibrates a detection threshold on held-out
scores (EER operating point), then reports per-attack detection rates
and the false-detection rate on the resident's own commands.

Run:  python examples/smart_home_protection.py
"""

import numpy as np

from repro.attacks import (
    AttackScenario,
    HiddenVoiceAttack,
    RandomAttack,
    ReplayAttack,
    VoiceSynthesisAttack,
)
from repro.core import DefensePipeline
from repro.core.segmentation import train_default_segmenter
from repro.eval.metrics import eer_from_scores
from repro.eval.rooms import ROOM_A
from repro.phonemes import SyntheticCorpus, phonemize
from repro.phonemes.commands import VA_COMMANDS

N_CALIBRATION = 6
N_TRIALS = 6


def main() -> None:
    print("Setting up the household and training the segmenter...")
    segmenter = train_default_segmenter(seed=21)
    pipeline = DefensePipeline(segmenter=segmenter)
    corpus = SyntheticCorpus(n_speakers=6, seed=22)
    resident, neighbor = corpus.speakers[0], corpus.speakers[1]
    scenario = AttackScenario(room_config=ROOM_A)

    def legit_score(index: int) -> float:
        command = VA_COMMANDS[index % len(VA_COMMANDS)]
        utterance = corpus.utterance(
            phonemize(command), speaker=resident, rng=100 + index
        )
        va, wearable = scenario.legitimate_recordings(
            utterance, spl_db=65.0 + 5 * (index % 3), rng=200 + index
        )
        return pipeline.score(va, wearable, rng=300 + index)

    def attack_score(generator, index: int) -> float:
        attack = generator.generate(rng=400 + index)
        va, wearable = scenario.attack_recordings(
            attack, spl_db=75.0, rng=500 + index
        )
        return pipeline.score(va, wearable, rng=600 + index)

    # ------------------------------------------------------------------
    # Calibrate the threshold at the EER point on calibration traffic.
    # ------------------------------------------------------------------
    print("Calibrating the detection threshold...")
    calibration_replay = ReplayAttack(corpus, resident)
    calibration_legit = [legit_score(i) for i in range(N_CALIBRATION)]
    calibration_attack = [
        attack_score(calibration_replay, i) for i in range(N_CALIBRATION)
    ]
    _, threshold = eer_from_scores(calibration_legit,
                                   calibration_attack)
    print(f"  threshold = {threshold:.3f}")

    # ------------------------------------------------------------------
    # Evaluate against each attack.
    # ------------------------------------------------------------------
    attacks = {
        "random (neighbor's voice)": RandomAttack(corpus, neighbor),
        "replay (scraped audio)": ReplayAttack(corpus, resident),
        "voice synthesis (cloned)": VoiceSynthesisAttack(
            corpus, resident, rng=23
        ),
        "hidden voice (obfuscated)": HiddenVoiceAttack(corpus),
    }
    print(f"\n{'attack':28} detected")
    for name, generator in attacks.items():
        detections = sum(
            attack_score(generator, 50 + i) < threshold
            for i in range(N_TRIALS)
        )
        print(f"{name:28} {detections}/{N_TRIALS}")

    false_alarms = sum(
        legit_score(50 + i) < threshold for i in range(N_TRIALS)
    )
    print(f"\nResident's own commands falsely flagged: "
          f"{false_alarms}/{N_TRIALS}")


if __name__ == "__main__":
    main()
