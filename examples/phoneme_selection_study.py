"""Offline barrier-effect-sensitive phoneme selection (paper § V-A).

Runs the Criteria I/II selection over the 37 common VA-command phonemes
and prints the per-phoneme statistics and the selected set (the paper
selects 31 of 37, dropping /s/, /z/, /sh/, /th/ — too weak to trigger
the accelerometer — and /aa/, /ao/ — loud enough to trigger it even
behind a barrier).

Run:  python examples/phoneme_selection_study.py
"""

from repro.core.phoneme_selection import (
    PhonemeSelectionConfig,
    PhonemeSelector,
)
from repro.phonemes.inventory import (
    COMMON_PHONEMES,
    PAPER_SELECTED_PHONEMES,
)


def main() -> None:
    config = PhonemeSelectionConfig(n_segments=24)
    print(
        "Running the selection study "
        f"({config.n_segments} renditions x 37 phonemes x 2 "
        "conditions)..."
    )
    selector = PhonemeSelector(config=config, seed=99)
    result = selector.run()

    print(
        f"\n{'phoneme':8} {'max Q3 thru':>12} {'min Q3 direct':>14} "
        f"{'C-I':>4} {'C-II':>5} {'selected':>9} {'paper':>6}"
    )
    for symbol in COMMON_PHONEMES:
        profile = result.profiles[symbol]
        c1 = symbol in result.satisfies_criterion_1
        c2 = symbol in result.satisfies_criterion_2
        print(
            f"/{symbol}/".ljust(8)
            + f"{profile.max_thru_barrier():12.5f} "
            + f"{profile.min_direct():14.5f} "
            + f"{'yes' if c1 else 'NO':>4} "
            + f"{'yes' if c2 else 'NO':>5} "
            + f"{'yes' if symbol in result.selected else '-':>9} "
            + f"{'yes' if symbol in PAPER_SELECTED_PHONEMES else '-':>6}"
        )

    print(
        f"\nSelected {len(result.selected)}/37 "
        f"(paper: 31/37); rejected: {sorted(result.rejected)}"
    )
    match = set(result.selected) == set(PAPER_SELECTED_PHONEMES)
    print(f"Matches the paper's selection exactly: {match}")


if __name__ == "__main__":
    main()
