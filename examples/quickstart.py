"""Quickstart: detect a thru-barrier replay attack in ~40 lines.

Trains the sensitive-phoneme segmenter (a few seconds), simulates one
legitimate voice command and one thru-barrier replay attack in a
glass-window room, and runs the defense pipeline on both.

Run:  python examples/quickstart.py
"""

from repro.attacks import AttackScenario, ReplayAttack
from repro.core import DefenseConfig, DefensePipeline
from repro.core.detector import DetectorConfig
from repro.core.segmentation import train_default_segmenter
from repro.eval.rooms import ROOM_A
from repro.phonemes import SyntheticCorpus, phonemize


def main() -> None:
    print("Training the barrier-effect-sensitive phoneme segmenter...")
    segmenter = train_default_segmenter(seed=7)

    # The defense pipeline, thresholded at a typical operating point.
    pipeline = DefensePipeline(
        segmenter=segmenter,
        config=DefenseConfig(detector=DetectorConfig(threshold=0.45)),
    )

    # A household: one user, one room with a glass window.
    corpus = SyntheticCorpus(n_speakers=4, seed=11)
    user = corpus.speakers[0]
    scenario = AttackScenario(room_config=ROOM_A)

    # --- The user speaks a command inside the room. ---------------------
    command = "alexa unlock the back door"
    utterance = corpus.utterance(
        phonemize(command), speaker=user, text=command, rng=1
    )
    va_rec, wearable_rec = scenario.legitimate_recordings(
        utterance, spl_db=70.0, rng=2
    )
    verdict = pipeline.analyze(va_rec, wearable_rec, rng=3)
    print(f"\nLegitimate command: {command!r}")
    print(f"  correlation score : {verdict.score:.3f}")
    print(f"  flagged as attack : {verdict.is_attack}")
    print(f"  sync delay fixed  : {verdict.sync_delay_s * 1000:.0f} ms")

    # --- An adversary replays the same command behind the window. -------
    replay = ReplayAttack(corpus, victim=user)
    attack = replay.generate(command=command, rng=4)
    va_rec, wearable_rec = scenario.attack_recordings(
        attack, spl_db=75.0, rng=5
    )
    verdict = pipeline.analyze(va_rec, wearable_rec, rng=6)
    print(f"\nThru-barrier replay of the same command:")
    print(f"  correlation score : {verdict.score:.3f}")
    print(f"  flagged as attack : {verdict.is_attack}")


if __name__ == "__main__":
    main()
