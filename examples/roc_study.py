"""ROC study with bootstrap confidence intervals (Fig. 9-style).

Runs a scaled-down replay-attack experiment across two rooms, prints the
ROC series for each detector (the rows behind a Fig. 9 panel), and
reports AUC/EER with 95 % bootstrap confidence intervals.

Run:  python examples/roc_study.py
"""

import numpy as np

from repro.attacks.base import AttackKind
from repro.core.segmentation import train_default_segmenter
from repro.eval import (
    bootstrap_auc,
    bootstrap_eer,
    format_series,
    sparkline,
)
from repro.eval.campaign import CampaignConfig, DetectorBank
from repro.eval.experiment import run_attack_experiment
from repro.eval.rooms import ROOM_A, ROOM_B


def main() -> None:
    print("Training the segmenter and running the campaign...")
    detectors = DetectorBank(segmenter=train_default_segmenter(seed=88))
    result = run_attack_experiment(
        AttackKind.REPLAY,
        rooms=[ROOM_A, ROOM_B],
        config=CampaignConfig(
            n_commands_per_participant=4, n_attacks_per_kind=4, seed=89
        ),
        detectors=detectors,
    )

    for detector in detectors.detector_names:
        legit = result.scores.legit[detector]
        attack = result.scores.attacks[AttackKind.REPLAY][detector]
        auc = bootstrap_auc(legit, attack, n_bootstrap=300, rng=90)
        eer = bootstrap_eer(legit, attack, n_bootstrap=300, rng=91)
        fdr, tdr = result.roc(detector)
        print(f"\n{detector}")
        print(f"  AUC: {auc}")
        print(f"  EER: {eer}")
        print(f"  ROC (TDR as FDR sweeps 0 to 1): {sparkline(tdr)}")

    # Print the raw ROC rows of the full system, as a figure data table.
    fdr, tdr = result.roc("full_system")
    keep = np.linspace(0, fdr.size - 1, 11).astype(int)
    print(
        "\n"
        + format_series(
            "FDR", "TDR", [f"{fdr[i]:.2f}" for i in keep],
            [tdr[i] for i in keep],
            title="full-system ROC (11-point summary)",
        )
    )


if __name__ == "__main__":
    main()
